#pragma once
// BatchServer — continuous-batching event-loop predict server (DESIGN.md §11).
//
// One reactor thread owns every connection: a net::EventLoop (epoll
// edge-triggered on Linux, poll elsewhere or via AIGML_NET_BACKEND=poll)
// dispatches readable/writable edges to net::Connection objects, the server
// decodes requests out of their read rings, and a net::SlotScheduler admits
// them straight into the PredictService's *in-flight* batch via the
// immediate submit path — no drain-window wait, batches form from whatever
// arrived while the previous batch was being predicted.  Completions hop
// back from the drainer thread to the reactor via EventLoop::post and are
// written out as they land.
//
// Protocols: the text dialect of serve::PredictServer (unchanged — existing
// clients and flow::RemoteCost work as-is) and the net/frame.hpp binary
// protocol, auto-detected per connection on the first byte (0xAB is not a
// printable command initial).  Text responses are re-serialised in request
// order through a per-connection sequence queue even though completions
// arrive out of order; binary responses go out in completion order carrying
// the request's id.
//
// Backpressure, two layers:
//   * per-connection: more than `max_inflight_per_conn` outstanding
//     requests => explicit BUSY for the excess request;
//   * socket-level: a write ring above `max_write_buffer` pauses reads on
//     that connection until the peer drains it — a slow reader throttles
//     itself, never its neighbours.
// Fairness: connections with decodable input wait in a round-robin ring and
// advance one request per visit.
//
// Shutdown: stop() is immediate (in-flight responses may be cut off);
// drain() stops accepting, stops decoding new requests, completes and
// flushes everything in flight, then closes — the SIGTERM path.
//
// Fault sites: net.accept (a just-accepted connection is closed again),
// net.epoll_spurious (loop-level, see EventLoop), net.slot_stall (completion
// delivery delayed on the drainer thread).

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "net/slots.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"
#include "util/socket.hpp"

namespace aigml::serve {

struct BatchServerParams {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;                ///< 0 = ephemeral, query via port()
  std::size_t max_line_bytes = 1 << 20;  ///< text mode: bound on one request line
  std::size_t max_payload_bytes = 1 << 20;  ///< binary mode: bound on one payload
  std::size_t max_connections = 1024;       ///< accept-time shed bound; 0 = unlimited
  std::size_t slots = 256;                  ///< global in-flight request bound
  std::size_t max_inflight_per_conn = 64;   ///< per-connection bound => BUSY
  std::size_t max_write_buffer = 4u << 20;  ///< pause reads above this backlog
  net::EventLoop::Backend backend = net::EventLoop::default_backend();
};

class BatchServer : private net::EventHandler {
 public:
  BatchServer(ModelRegistry& registry, PredictService& service, BatchServerParams params = {});
  ~BatchServer() override;

  BatchServer(const BatchServer&) = delete;
  BatchServer& operator=(const BatchServer&) = delete;

  /// Binds, listens, and starts the reactor thread.
  void start();
  [[nodiscard]] std::uint16_t port() const;
  /// Blocks until the reactor exits (stop(), or drain() finishing).
  void wait();
  /// Hard stop: the reactor exits at the next iteration, connections close.
  void stop();
  /// Graceful: refuse new connections and new requests, complete and flush
  /// all in-flight work, then close everything and return.
  void drain();

  /// Snapshot of the slot scheduler, fetched on the reactor thread.  For
  /// external threads (tests, monitoring); do not call from a completion.
  [[nodiscard]] net::SlotStats slot_stats() const;

 private:
  enum class Mode : unsigned char { kDetect, kText, kBinary };

  /// A decoded PREDICT/FEATURES request waiting for (or holding) a slot.
  struct Pending {
    bool features = false;
    bool binary = false;
    std::string model;
    std::optional<aig::Aig> graph;  ///< PREDICT: parsed at decode time
    std::vector<double> row;        ///< FEATURES
    std::uint32_t rid = 0;          ///< binary request id
    std::uint64_t seq = 0;          ///< text ordering slot
  };

  struct Conn {
    std::unique_ptr<net::Connection> sock;
    Mode mode = Mode::kDetect;
    std::size_t inflight = 0;     ///< admitted, completion not yet delivered
    bool in_ready = false;        ///< sitting in the scheduler's ready ring
    bool parked = false;          ///< holding parked_req, waiting for a slot
    bool bp_paused = false;       ///< reads paused by write-ring backpressure
    bool close_after_flush = false;  ///< QUIT / protocol violation / drain
    std::optional<Pending> parked_req;
    // Text responses in request order: ordered[i] answers request
    // base_seq + i; a slot is empty while its request is still in flight.
    std::uint64_t next_seq = 0;
    std::uint64_t base_seq = 0;
    std::deque<std::optional<std::string>> ordered;
  };

  /// Hop point for PredictService completions: the drainer thread posts to
  /// the loop through this, and ~BatchServer nulls `loop` so late
  /// completions of an already-gone server fall on the floor safely.
  struct Router {
    std::mutex mutex;
    net::EventLoop* loop = nullptr;
    bool post(std::function<void()> fn);
  };

  // listener events (BatchServer is the listener's EventHandler)
  void on_readable() override;
  void on_writable() override {}

  // connection events
  void handle_data(std::uint64_t id);
  void handle_eof(std::uint64_t id);
  void handle_write_drained(std::uint64_t id);
  void handle_io_error(std::uint64_t id);

  // decode / dispatch (reactor thread)
  void pump();
  [[nodiscard]] bool has_complete_message(const Conn& c) const;
  void process_one(Conn& c);
  void process_text_line(Conn& c, const std::string& line);
  void process_binary_frame(Conn& c, const net::FrameHeader& header, std::string payload);
  void admit_or_park(Conn& c, Pending p);
  void submit_admitted(Conn& c, Pending p);
  void on_completion(std::uint64_t id, bool binary, std::uint32_t rid, std::uint64_t seq,
                     double value, bool failed, const std::string& error);
  void unpark_one();

  // responses
  [[nodiscard]] std::uint64_t reserve_seq(Conn& c);
  void fill_ordered(Conn& c, std::uint64_t seq, std::string line);
  void flush_ordered(Conn& c);
  void text_reply(Conn& c, std::string line);
  void frame_reply(Conn& c, net::Opcode op, std::uint32_t rid, std::string_view payload);
  void send_to(Conn& c, std::string_view bytes);
  [[nodiscard]] std::string stats_reply();

  // lifecycle
  void close_conn(std::uint64_t id);
  void maybe_close(Conn& c);
  void maybe_finish_drain();

  ModelRegistry& registry_;
  PredictService& service_;
  const BatchServerParams params_;

  net::EventLoop loop_;
  net::SlotScheduler sched_;
  std::shared_ptr<Router> router_;
  std::unique_ptr<TcpListener> listener_;
  std::thread loop_thread_;

  std::mutex join_mutex_;       ///< wait()/stop()/drain() may race on join
  std::mutex lifecycle_mutex_;  ///< serialises stop() against itself

  std::uint64_t next_conn_id_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  // Connections closed mid-callback park here until control returns to the
  // loop; destroying them inside their own callback would be use-after-free.
  std::vector<std::unique_ptr<Conn>> graveyard_;
  bool pumping_ = false;
  bool draining_ = false;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace aigml::serve
