#pragma once
// Event-loop load generator for the serving benches and `aigml client bench`
// (DESIGN.md §11).  Drives N concurrent connections with up to `pipeline`
// outstanding FEATURES requests each from ONE thread — the single-core
// answer to "simulate 200 clients" (200 blocking client threads would bench
// the scheduler, not the server).  It reuses the same net::EventLoop /
// net::Connection reactor the server is built on, so the bench dogfoods the
// subsystem it measures.
//
// Speaks either dialect.  Text mode relies on the protocol's in-order
// responses (a per-connection FIFO of send timestamps); binary mode matches
// responses by request id.  Every response value is recorded per global
// request index so the caller can compare each one bit-for-bit against a
// local GbdtModel::predict — the throughput gate is only meaningful if the
// answers are right.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/event_loop.hpp"
#include "util/stats.hpp"

namespace aigml::serve {

struct LoadGenParams {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t connections = 200;
  std::size_t requests = 10000;  ///< total, spread across connections on demand
  std::size_t pipeline = 8;      ///< max outstanding per connection
  bool binary = true;
  std::string model;
  /// Request i sends rows[i % rows.size()].  Must be non-empty.
  std::vector<std::vector<double>> rows;
  int connect_timeout_ms = 5000;
  int run_timeout_ms = 120000;  ///< hard stop; unanswered requests => errors
  net::EventLoop::Backend backend = net::EventLoop::default_backend();
};

struct LoadGenResult {
  std::size_t ok = 0;
  std::size_t busy = 0;     ///< explicit BUSY sheds
  std::size_t errors = 0;   ///< ERR replies, dead connections, timeout losses
  double seconds = 0.0;     ///< first send to last response
  double throughput_rps = 0.0;
  LatencyHistogram latency;  ///< per-request send->response, microseconds
  /// values[i] answers request i; NaN where the request got BUSY/ERR/lost.
  std::vector<double> values;
};

/// Runs the load on the calling thread; returns when every request is
/// answered or lost, or at run_timeout_ms.  Throws only on setup failure
/// (cannot connect any connection).
[[nodiscard]] LoadGenResult run_loadgen(const LoadGenParams& params);

}  // namespace aigml::serve
