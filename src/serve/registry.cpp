#include "serve/registry.hpp"

#include <stdexcept>
#include <utility>

#include "ml/model_v2.hpp"
#include "opt/cost.hpp"
#include "util/timer.hpp"

namespace aigml::serve {

namespace fs = std::filesystem;

namespace {

std::int64_t mtime_ns(const fs::path& path) {
  std::error_code ec;
  const auto t = fs::last_write_time(path, ec);
  if (ec) return 0;
  return static_cast<std::int64_t>(t.time_since_epoch().count());
}

/// Sibling precedence per stem (registry.hpp header comment): higher wins.
int format_rank(const std::string& ext) {
  if (ext == ".gbdt2") return 2;
  if (ext == ".gbdt") return 1;
  return 0;  // .gnn
}

}  // namespace

ModelRegistry::ModelRegistry(fs::path dir) : dir_(std::move(dir)) {
  if (!fs::is_directory(dir_)) {
    throw std::runtime_error("ModelRegistry: not a directory: " + dir_.string());
  }
  const ReloadReport report = reload();
  if (report.loaded == 0 && !report.errors.empty()) {
    std::string msg = "ModelRegistry: no loadable models in " + dir_.string();
    for (const auto& e : report.errors) msg += "\n  " + e;
    throw std::runtime_error(msg);
  }
}

void ModelRegistry::install_snapshot(const std::string& name,
                                     std::shared_ptr<const ml::Model> snapshot) {
  const std::lock_guard lock(mutex_);
  Entry& entry = entries_[name];
  entry.model = std::move(snapshot);
  entry.version += 1;
  entry.path.clear();
  entry.file_size = -1;
  entry.file_mtime_ns = 0;
  entry.format = "memory";
  entry.load_seconds = 0.0;
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

void ModelRegistry::install(const std::string& name, ml::GbdtModel model) {
  install_snapshot(name, std::make_shared<const ml::GbdtModel>(std::move(model)));
}

void ModelRegistry::install(const std::string& name, ml::GnnModel model) {
  install_snapshot(name, std::make_shared<const ml::GnnModel>(std::move(model)));
}

std::shared_ptr<const ml::Model> ModelRegistry::get(const std::string& name) const {
  auto snapshot = try_get(name);
  if (snapshot == nullptr) throw std::out_of_range("ModelRegistry: unknown model '" + name + "'");
  return snapshot;
}

std::shared_ptr<const ml::Model> ModelRegistry::try_get(const std::string& name) const {
  const std::lock_guard lock(mutex_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.model;
}

ReloadReport ModelRegistry::reload() {
  ReloadReport report;
  if (dir_.empty()) return report;

  struct Candidate {
    std::string name;
    fs::path path;
    std::int64_t size = 0;
    std::int64_t mtime = 0;
    std::string ext;
  };
  // One candidate per stem, picked by format_rank (.gbdt2 > .gbdt > .gnn).
  std::map<std::string, Candidate> by_name;
  for (const auto& dirent : fs::directory_iterator(dir_)) {
    const auto ext = dirent.path().extension().string();
    if (!dirent.is_regular_file() || (ext != ".gbdt" && ext != ".gbdt2" && ext != ".gnn")) {
      continue;
    }
    const std::string name = dirent.path().stem().string();
    const auto it = by_name.find(name);
    if (it != by_name.end() && format_rank(it->second.ext) > format_rank(ext)) continue;
    std::error_code ec;
    const auto size = static_cast<std::int64_t>(fs::file_size(dirent.path(), ec));
    by_name[name] = {name, dirent.path(), ec ? 0 : size, mtime_ns(dirent.path()), ext};
  }
  std::vector<Candidate> candidates;
  candidates.reserve(by_name.size());
  for (auto& [name, c] : by_name) candidates.push_back(std::move(c));

  for (const Candidate& c : candidates) {
    {
      const std::lock_guard lock(mutex_);
      const auto it = entries_.find(c.name);
      if (it != entries_.end() && it->second.path == c.path.string() &&
          it->second.file_size == c.size && it->second.file_mtime_ns == c.mtime) {
        ++report.unchanged;
        continue;
      }
    }
    // Parse outside the lock — loading a 5000-tree model must not stall
    // concurrent get() calls.  Serving always reads the container's fp64
    // values (quantization is an opt-in of local ml:/predict consumers).
    std::shared_ptr<const ml::Model> snapshot;
    std::string format;
    Timer load_timer;
    try {
      if (c.ext == ".gbdt2") {
        snapshot = std::make_shared<const ml::GbdtModel>(ml::GbdtModel::load_v2(c.path));
        format = "v2";
      } else if (c.ext == ".gnn") {
        snapshot = std::make_shared<const ml::GnnModel>(ml::GnnModel::load(c.path));
        format = "gnn1";
      } else {
        snapshot = std::make_shared<const ml::GbdtModel>(ml::GbdtModel::load(c.path));
        format = "text";
      }
    } catch (const std::exception& e) {
      report.errors.push_back(c.path.string() + ": " + e.what());
      continue;  // keep the previous snapshot, if any
    }
    const double load_seconds = load_timer.elapsed_s();
    const std::lock_guard lock(mutex_);
    Entry& entry = entries_[c.name];
    entry.model = std::move(snapshot);
    entry.version += 1;
    entry.path = c.path.string();
    entry.file_size = c.size;
    entry.file_mtime_ns = c.mtime;
    entry.format = format;
    entry.load_seconds = load_seconds;
    generation_.fetch_add(1, std::memory_order_acq_rel);
    ++report.loaded;
  }
  return report;
}

std::uint64_t ModelRegistry::version(const std::string& name) const {
  const std::lock_guard lock(mutex_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.version;
}

std::vector<ModelInfo> ModelRegistry::list() const {
  const std::lock_guard lock(mutex_);
  std::vector<ModelInfo> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    ModelInfo info;
    info.name = name;
    info.family = ml::to_string(entry.model->family());
    info.version = entry.version;
    info.num_trees = entry.model->num_trees();
    info.num_features = entry.model->num_features();
    info.path = entry.path;
    info.format = entry.format;
    info.load_seconds = entry.load_seconds;
    out.push_back(std::move(info));
  }
  return out;
}

std::size_t ModelRegistry::size() const {
  const std::lock_guard lock(mutex_);
  return entries_.size();
}

opt::MlCost make_ml_cost(const ModelRegistry& registry, const std::string& delay_model,
                         const std::string& area_model) {
  return opt::MlCost(registry.get(delay_model), registry.get(area_model));
}

}  // namespace aigml::serve
