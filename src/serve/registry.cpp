#include "serve/registry.hpp"

#include <stdexcept>
#include <utility>

#include "ml/model_v2.hpp"
#include "opt/cost.hpp"
#include "util/timer.hpp"

namespace aigml::serve {

namespace fs = std::filesystem;

namespace {

std::int64_t mtime_ns(const fs::path& path) {
  std::error_code ec;
  const auto t = fs::last_write_time(path, ec);
  if (ec) return 0;
  return static_cast<std::int64_t>(t.time_since_epoch().count());
}

}  // namespace

ModelRegistry::ModelRegistry(fs::path dir) : dir_(std::move(dir)) {
  if (!fs::is_directory(dir_)) {
    throw std::runtime_error("ModelRegistry: not a directory: " + dir_.string());
  }
  const ReloadReport report = reload();
  if (report.loaded == 0 && !report.errors.empty()) {
    std::string msg = "ModelRegistry: no loadable models in " + dir_.string();
    for (const auto& e : report.errors) msg += "\n  " + e;
    throw std::runtime_error(msg);
  }
}

void ModelRegistry::install(const std::string& name, ml::GbdtModel model) {
  auto snapshot = std::make_shared<const ml::GbdtModel>(std::move(model));
  const std::lock_guard lock(mutex_);
  Entry& entry = entries_[name];
  entry.model = std::move(snapshot);
  entry.version += 1;
  entry.path.clear();
  entry.file_size = -1;
  entry.file_mtime_ns = 0;
  entry.format = "memory";
  entry.load_seconds = 0.0;
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

std::shared_ptr<const ml::GbdtModel> ModelRegistry::get(const std::string& name) const {
  auto snapshot = try_get(name);
  if (snapshot == nullptr) throw std::out_of_range("ModelRegistry: unknown model '" + name + "'");
  return snapshot;
}

std::shared_ptr<const ml::GbdtModel> ModelRegistry::try_get(const std::string& name) const {
  const std::lock_guard lock(mutex_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.model;
}

ReloadReport ModelRegistry::reload() {
  ReloadReport report;
  if (dir_.empty()) return report;

  struct Candidate {
    std::string name;
    fs::path path;
    std::int64_t size = 0;
    std::int64_t mtime = 0;
    bool v2 = false;
  };
  // One candidate per stem; a .gbdt2 sibling shadows the text file so every
  // consumer of the same model name rides the mmap path when it exists.
  std::map<std::string, Candidate> by_name;
  for (const auto& dirent : fs::directory_iterator(dir_)) {
    const auto ext = dirent.path().extension();
    if (!dirent.is_regular_file() || (ext != ".gbdt" && ext != ".gbdt2")) continue;
    const bool v2 = ext == ".gbdt2";
    const std::string name = dirent.path().stem().string();
    const auto it = by_name.find(name);
    if (it != by_name.end() && it->second.v2 && !v2) continue;  // keep the v2 sibling
    std::error_code ec;
    const auto size = static_cast<std::int64_t>(fs::file_size(dirent.path(), ec));
    by_name[name] = {name, dirent.path(), ec ? 0 : size, mtime_ns(dirent.path()), v2};
  }
  std::vector<Candidate> candidates;
  candidates.reserve(by_name.size());
  for (auto& [name, c] : by_name) candidates.push_back(std::move(c));

  for (const Candidate& c : candidates) {
    {
      const std::lock_guard lock(mutex_);
      const auto it = entries_.find(c.name);
      if (it != entries_.end() && it->second.path == c.path.string() &&
          it->second.file_size == c.size && it->second.file_mtime_ns == c.mtime) {
        ++report.unchanged;
        continue;
      }
    }
    // Parse outside the lock — loading a 5000-tree model must not stall
    // concurrent get() calls.  Serving always reads the container's fp64
    // values (quantization is an opt-in of local ml:/predict consumers).
    std::shared_ptr<const ml::GbdtModel> snapshot;
    Timer load_timer;
    try {
      snapshot = std::make_shared<const ml::GbdtModel>(
          c.v2 ? ml::GbdtModel::load_v2(c.path) : ml::GbdtModel::load(c.path));
    } catch (const std::exception& e) {
      report.errors.push_back(c.path.string() + ": " + e.what());
      continue;  // keep the previous snapshot, if any
    }
    const double load_seconds = load_timer.elapsed_s();
    const std::lock_guard lock(mutex_);
    Entry& entry = entries_[c.name];
    entry.model = std::move(snapshot);
    entry.version += 1;
    entry.path = c.path.string();
    entry.file_size = c.size;
    entry.file_mtime_ns = c.mtime;
    entry.format = c.v2 ? "v2" : "text";
    entry.load_seconds = load_seconds;
    generation_.fetch_add(1, std::memory_order_acq_rel);
    ++report.loaded;
  }
  return report;
}

std::uint64_t ModelRegistry::version(const std::string& name) const {
  const std::lock_guard lock(mutex_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.version;
}

std::vector<ModelInfo> ModelRegistry::list() const {
  const std::lock_guard lock(mutex_);
  std::vector<ModelInfo> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.push_back({name, entry.version, entry.model->num_trees(), entry.model->num_features(),
                   entry.path, entry.format, entry.load_seconds});
  }
  return out;
}

std::size_t ModelRegistry::size() const {
  const std::lock_guard lock(mutex_);
  return entries_.size();
}

opt::MlCost make_ml_cost(const ModelRegistry& registry, const std::string& delay_model,
                         const std::string& area_model) {
  return opt::MlCost(registry.get(delay_model), registry.get(area_model));
}

}  // namespace aigml::serve
