#pragma once
// LiveMlCost — the registry-*following* ML evaluator that closes the active
// learning loop (learn/, DESIGN.md §9).
//
// opt::MlCost pins the model snapshots it was built with: a hot-reload in
// the registry is invisible until a new evaluator is built.  That is the
// right contract for reproducible experiments, and the wrong one for a
// search that retrains its own oracle mid-run.  LiveMlCost polls the
// registry's lock-free generation counter at every evaluation entry point
// and, when a swap happened, atomically refetches its snapshots and tells
// its FeatureContext the derivation changed (refresh_derived):
//
//   * memo payloads from the old generation are cleared — an exact structure
//     repeat re-runs inference under the new model instead of replaying a
//     stale prediction;
//   * the bound graph's value is re-derived immediately — a no-op move right
//     after the swap returns the new model's prediction, not the old one;
//   * the feature side (analysis snapshots, delta extraction, the memo's
//     structural keys) is model-independent and stays fully incremental.
//
// Family-agnostic like opt::MlCost: when either pinned snapshot is a GNN
// (Model::needs_graph()) evaluation runs through the FeatureContext's graph
// path.  On a swap the graph-mode context is invalidated rather than
// eagerly re-derived (invalidate_derived — the context does not retain the
// bound graph), so the next evaluation re-runs inference under the new
// model even when the move is a structural no-op.  A swap may also change
// the family itself (a gnn checkpoint installed over a gbdt name):
// graph_mode_ is recomputed per refresh, and the context handles the
// crossover because both paths share its structural bookkeeping.
//
// Between swaps, LiveMlCost is bit-identical to an opt::MlCost over the
// same snapshots (tests/test_learn.cpp locks this in), so `learn=0` runs
// cannot be perturbed by the plumbing existing.
//
// Single-threaded like every CostEvaluator; installs may come from any
// thread (the registry hands out immutable snapshots under its own lock).

#include <cstdint>
#include <memory>
#include <string>

#include "opt/cost.hpp"
#include "serve/registry.hpp"

namespace aigml::serve {

class LiveMlCost final : public opt::CostEvaluator {
 public:
  /// Pins the current snapshots of the two named models; throws
  /// std::out_of_range when either is unknown.  `registry` is borrowed and
  /// must outlive the evaluator.
  LiveMlCost(const ModelRegistry& registry, std::string delay_model = "delay",
             std::string area_model = "area");

  [[nodiscard]] std::string name() const override { return "ml-live"; }
  [[nodiscard]] bool supports_incremental() const noexcept override { return true; }

  /// Mid-run snapshot swaps this evaluator has actually observed (generation
  /// bumps for *other* models in the registry don't count).
  [[nodiscard]] std::uint64_t swaps_observed() const noexcept { return swaps_; }
  [[nodiscard]] std::uint64_t generation_seen() const noexcept { return generation_seen_; }

 protected:
  opt::QualityEval evaluate_impl(const aig::Aig& g) override;
  opt::QualityEval bind_impl(const aig::Aig& g) override;
  opt::QualityEval evaluate_delta_impl(const aig::Aig& g,
                                       const aig::DirtyRegion& dirty) override;
  void commit_impl() override { ctx_.commit(); }
  void rollback_impl() override { ctx_.rollback(); }

 private:
  /// Re-pins snapshots when the registry generation moved.  Called at every
  /// evaluation entry point — i.e. only between moves, when no speculative
  /// update is pending (the refresh_derived precondition).
  void refresh();

  [[nodiscard]] opt::QualityEval predict(const features::FeatureVector& f) const {
    return opt::QualityEval{delay_->predict(std::span<const double>(f.data(), f.size())),
                            area_->predict(std::span<const double>(f.data(), f.size()))};
  }
  [[nodiscard]] opt::QualityEval predict_graph(const aig::Aig& g) const {
    return opt::QualityEval{delay_->predict(g), area_->predict(g)};
  }

  const ModelRegistry* registry_;
  std::string delay_name_;
  std::string area_name_;
  std::shared_ptr<const ml::Model> delay_;
  std::shared_ptr<const ml::Model> area_;
  bool graph_mode_ = false;  ///< either pinned snapshot needs_graph(); per-refresh
  std::uint64_t generation_seen_ = 0;
  std::uint64_t swaps_ = 0;
  bool bound_ = false;
  opt::detail::FeatureContext ctx_;
};

}  // namespace aigml::serve
