#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "features/features.hpp"
#include "util/timer.hpp"

namespace aigml::serve {

PredictService::PredictService(ModelRegistry& registry, ServiceParams params)
    : registry_(registry),
      params_{std::max(1, params.max_batch), std::max(0, params.batch_wait_us),
              params.num_threads},
      pool_(params.num_threads),
      drainer_([this] { drainer_loop(); }) {}

PredictService::~PredictService() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  drainer_.join();
}

std::future<double> PredictService::submit(std::string model, aig::Aig graph) {
  Request request;
  request.model = std::move(model);
  request.graph = std::move(graph);
  return enqueue(std::move(request));
}

std::future<double> PredictService::submit_features(std::string model,
                                                    std::vector<double> features) {
  Request request;
  request.model = std::move(model);
  request.features = std::move(features);
  return enqueue(std::move(request));
}

void PredictService::submit_async(std::string model, aig::Aig graph, CompletionFn done,
                                  bool immediate) {
  Request request;
  request.model = std::move(model);
  request.graph = std::move(graph);
  request.done = std::move(done);
  request.immediate = immediate;
  enqueue_async(std::move(request));
}

void PredictService::submit_features_async(std::string model, std::vector<double> features,
                                           CompletionFn done, bool immediate) {
  Request request;
  request.model = std::move(model);
  request.features = std::move(features);
  request.done = std::move(done);
  request.immediate = immediate;
  enqueue_async(std::move(request));
}

double PredictService::predict(const std::string& model, const aig::Aig& graph) {
  return submit(model, graph).get();
}

std::vector<double> PredictService::predict_batch(const std::string& model,
                                                  std::span<const aig::Aig> graphs) {
  std::vector<std::future<double>> futures;
  futures.reserve(graphs.size());
  for (const aig::Aig& g : graphs) futures.push_back(submit(model, g));
  std::vector<double> out;
  out.reserve(graphs.size());
  for (auto& f : futures) out.push_back(f.get());
  return out;
}

ServiceStats PredictService::stats() const {
  const std::lock_guard lock(mutex_);
  return stats_;
}

std::future<double> PredictService::enqueue(Request request) {
  auto future = request.promise.get_future();
  request.enqueued_at = std::chrono::steady_clock::now();
  {
    const std::lock_guard lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("PredictService: service is shutting down");
    }
    if (request.immediate) ++immediate_pending_;
    queue_.push_back(std::move(request));
    ++stats_.requests;
  }
  queue_cv_.notify_all();
  return future;
}

void PredictService::enqueue_async(Request request) {
  request.enqueued_at = std::chrono::steady_clock::now();
  {
    std::unique_lock lock(mutex_);
    if (stopping_) {
      // The async contract is no-throw: a late submit fails through the
      // callback, on this thread, outside the lock.
      lock.unlock();
      fulfill_error(request, std::make_exception_ptr(std::runtime_error(
                                 "PredictService: service is shutting down")));
      return;
    }
    if (request.immediate) ++immediate_pending_;
    queue_.push_back(std::move(request));
    ++stats_.requests;
  }
  queue_cv_.notify_all();
}

void PredictService::fulfill_value(Request& request, double value) {
  if (request.done) {
    request.done(value, nullptr);
  } else {
    request.promise.set_value(value);
  }
}

void PredictService::fulfill_error(Request& request, std::exception_ptr error) {
  if (request.done) {
    request.done(0.0, std::move(error));
  } else {
    request.promise.set_exception(std::move(error));
  }
}

void PredictService::drainer_loop() {
  std::vector<Request> batch;
  while (true) {
    {
      std::unique_lock lock(mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      // Micro-batching window: the first request opens a short coalescing
      // wait so closely-spaced concurrent submitters share one batch.  Any
      // pending `immediate` request collapses the window — continuous
      // batching gets its width from requests that arrived while the
      // previous batch was in flight, not from stalling this one.
      if (!stopping_ && immediate_pending_ == 0 && params_.batch_wait_us > 0 &&
          queue_.size() < static_cast<std::size_t>(params_.max_batch)) {
        queue_cv_.wait_for(
            lock, std::chrono::microseconds(params_.batch_wait_us),
            [&] {
              return stopping_ || immediate_pending_ > 0 ||
                     queue_.size() >= static_cast<std::size_t>(params_.max_batch);
            });
      }
      const std::size_t take =
          std::min(queue_.size(), static_cast<std::size_t>(params_.max_batch));
      batch.clear();
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        if (queue_.front().immediate && immediate_pending_ > 0) --immediate_pending_;
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      ++stats_.batches;
      stats_.max_batch = std::max(stats_.max_batch, static_cast<std::uint64_t>(take));
      std::size_t bucket = 0;
      for (std::size_t s = take; s > 1 && bucket + 1 < ServiceStats::kBatchHistBuckets;
           s >>= 1) {
        ++bucket;
      }
      ++stats_.batch_hist[bucket];
    }
    Timer timer;
    process_batch(batch);
    const double busy = timer.elapsed_s();
    const std::lock_guard lock(mutex_);
    stats_.busy_seconds += busy;
  }
}

void PredictService::process_batch(std::vector<Request>& batch) {
  // Group by model, preserving submission order within each group.
  std::vector<std::pair<std::string, std::vector<std::size_t>>> groups;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == batch[i].model; });
    if (it == groups.end()) {
      groups.push_back({batch[i].model, {i}});
    } else {
      it->second.push_back(i);
    }
  }

  // Stats are bumped *before* the promises they describe are fulfilled: a
  // caller that has seen its future resolve must never read counters that
  // don't include it yet (test_serve.cpp reads stats right after get()).
  // The latency histogram follows the same rule — service time is measured
  // here, a hair before fulfillment, which is within the accounting-lock
  // acquisition of the true enqueue→fulfill interval.
  const auto account = [this, &batch](const std::string& model_name,
                                      std::span<const std::size_t> completed,
                                      std::span<const std::size_t> failed) {
    const auto now = std::chrono::steady_clock::now();
    const auto us_since = [&now](std::chrono::steady_clock::time_point start) {
      return std::chrono::duration<double, std::micro>(now - start).count();
    };
    const std::lock_guard lock(mutex_);
    stats_.completed += completed.size();
    stats_.failed += failed.size();
    if (!completed.empty()) stats_.predictions[model_name] += completed.size();
    for (const std::size_t i : completed) stats_.latency.add_us(us_since(batch[i].enqueued_at));
    for (const std::size_t i : failed) stats_.latency.add_us(us_since(batch[i].enqueued_at));
  };
  for (auto& [model_name, indices] : groups) {
    const std::shared_ptr<const ml::Model> snapshot = registry_.try_get(model_name);
    if (snapshot == nullptr) {
      account(model_name, {}, indices);
      for (const std::size_t i : indices) {
        fulfill_error(batch[i], std::make_exception_ptr(std::out_of_range(
                                    "PredictService: unknown model '" + model_name + "'")));
      }
      continue;
    }
    if (snapshot->needs_graph()) {
      // Graph-family group (gnn): answer every graph request in submission
      // order with one batched message-passing pass — bit-identical to
      // per-graph predict() (gnn.hpp contract).  Feature-row requests
      // cannot feed a graph model and fail individually.
      std::vector<std::size_t> done_idx;
      std::vector<std::size_t> fail_idx;
      std::vector<const aig::Aig*> graphs;
      for (const std::size_t i : indices) {
        if (batch[i].graph.has_value()) {
          graphs.push_back(&*batch[i].graph);
          done_idx.push_back(i);
        } else {
          fail_idx.push_back(i);
        }
      }
      std::vector<double> answers;
      std::exception_ptr group_error;
      try {
        answers = snapshot->predict_graphs(graphs);
      } catch (...) {
        group_error = std::current_exception();
      }
      if (group_error != nullptr) {
        fail_idx.insert(fail_idx.end(), done_idx.begin(), done_idx.end());
        done_idx.clear();
      }
      account(model_name, done_idx, fail_idx);
      for (std::size_t v = 0; v < done_idx.size(); ++v) {
        fulfill_value(batch[done_idx[v]], answers[v]);
      }
      for (const std::size_t i : fail_idx) {
        fulfill_error(batch[i],
                      group_error != nullptr
                          ? group_error
                          : std::make_exception_ptr(std::runtime_error(
                                "PredictService: model '" + model_name +
                                "' is family=gnn and consumes graphs, not feature rows "
                                "(use PREDICT with an inline AIG)")));
      }
      continue;
    }
    const std::size_t width = snapshot->num_features();
    const std::size_t n = indices.size();
    std::vector<double> matrix(n * width, 0.0);
    std::vector<char> ok(n, 1);
    std::vector<std::string> errors(n);
    // Fan extraction out; per-item failures are recorded, never thrown out
    // of the pool (an exception would abandon the rest of the batch).
    pool_.parallel_for(n, [&](std::size_t i) {
      Request& request = batch[indices[i]];
      const std::span<double> row(matrix.data() + i * width, width);
      try {
        if (request.graph.has_value()) {
          if (width != features::kNumFeatures) {
            throw std::runtime_error("model '" + model_name + "' expects " +
                                     std::to_string(width) + " features, extraction yields " +
                                     std::to_string(int{features::kNumFeatures}));
          }
          features::extract_into(*request.graph, row);
        } else {
          if (request.features.size() != width) {
            throw std::runtime_error("feature row width " +
                                     std::to_string(request.features.size()) +
                                     " != model width " + std::to_string(width));
          }
          std::copy(request.features.begin(), request.features.end(), row.begin());
        }
      } catch (const std::exception& e) {
        ok[i] = 0;
        errors[i] = e.what();
      }
    });

    // Compact the valid rows and answer them with one predict_all pass.
    std::vector<std::size_t> valid;
    valid.reserve(n);
    std::vector<std::size_t> done_idx;
    std::vector<std::size_t> fail_idx;
    for (std::size_t i = 0; i < n; ++i) {
      if (ok[i] != 0) {
        valid.push_back(i);
        done_idx.push_back(indices[i]);
      } else {
        fail_idx.push_back(indices[i]);
      }
    }
    std::vector<double> compact(valid.size() * width);
    for (std::size_t v = 0; v < valid.size(); ++v) {
      std::copy_n(matrix.data() + valid[v] * width, width, compact.data() + v * width);
    }
    const std::vector<double> answers = snapshot->predict_all(compact, valid.size());
    account(model_name, done_idx, fail_idx);
    for (std::size_t v = 0; v < valid.size(); ++v) {
      fulfill_value(batch[indices[valid[v]]], answers[v]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (ok[i] == 0) {
        fulfill_error(batch[indices[i]], std::make_exception_ptr(
                                             std::runtime_error("PredictService: " + errors[i])));
      }
    }
  }
}

}  // namespace aigml::serve
