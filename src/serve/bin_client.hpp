#pragma once
// BinClient — blocking TCP client for the net/frame.hpp binary protocol.
// Mirrors serve::Client method-for-method so call sites can switch dialects
// behind one line (`aigml client --binary` does exactly that), but ships
// doubles as IEEE-754 bit patterns instead of decimal text: a predicted
// value returns bit-identical by construction, with no %.17g round trip.
//
// One outstanding request at a time; each request carries a fresh id and
// the response must echo it (the server may interleave responses to
// *different* ids under pipelining, which this client never issues — the
// event-loop load generator in serve/loadgen.hpp is the pipelined one).
// BUSY frames surface as ServerBusy, ERROR frames as std::runtime_error,
// exactly like the text client.

#include <cstdint>
#include <span>
#include <string>

#include "aig/aig.hpp"
#include "net/frame.hpp"
#include "serve/client.hpp"
#include "util/socket.hpp"

namespace aigml::serve {

class BinClient {
 public:
  BinClient(const std::string& host, std::uint16_t port, ClientOptions options = {});

  [[nodiscard]] double predict(const std::string& model, const aig::Aig& g);
  [[nodiscard]] double predict_features(const std::string& model, std::span<const double> row);
  std::string reload();
  [[nodiscard]] std::string stats();
  [[nodiscard]] std::string ping();
  void quit();

 private:
  /// Sends one frame and reads frames until the response with this id
  /// arrives; returns (opcode, payload) after mapping BUSY/ERROR to throws.
  std::pair<net::Opcode, std::string> roundtrip(net::Opcode op, std::string_view payload);
  [[nodiscard]] std::string read_exact(std::size_t n);

  Socket socket_;
  std::uint32_t next_id_ = 1;
};

}  // namespace aigml::serve
