#include "serve/loadgen.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <limits>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "net/connection.hpp"
#include "net/frame.hpp"
#include "serve/protocol.hpp"
#include "util/socket.hpp"

namespace aigml::serve {

namespace {

using Clock = std::chrono::steady_clock;

struct Peer {
  std::unique_ptr<net::Connection> conn;
  /// Text mode: responses arrive in send order.
  std::deque<std::pair<std::size_t, Clock::time_point>> fifo;
  /// Binary mode: responses arrive in completion order, matched by id.
  std::unordered_map<std::uint32_t, std::pair<std::size_t, Clock::time_point>> pending;
  std::size_t outstanding = 0;
  bool dead = false;
};

struct Driver {
  const LoadGenParams& params;
  net::EventLoop loop;
  std::vector<Peer> peers;
  LoadGenResult result;
  std::size_t next_request = 0;  ///< next global request index to send
  std::size_t answered = 0;      ///< ok + busy + errors
  std::size_t live_peers = 0;
  Clock::time_point t0;
  bool timed_out = false;

  explicit Driver(const LoadGenParams& p) : params(p), loop(p.backend) {}

  void finish_request(Peer& peer, std::size_t index, Clock::time_point sent,
                      double value, bool is_busy, bool is_error) {
    result.latency.add_us(std::chrono::duration<double, std::micro>(Clock::now() - sent).count());
    if (is_busy) {
      ++result.busy;
    } else if (is_error) {
      ++result.errors;
    } else {
      ++result.ok;
      result.values[index] = value;
    }
    ++answered;
    if (peer.outstanding > 0) --peer.outstanding;
  }

  /// Drops every response this peer still owes; called when it dies.
  void lose_outstanding(Peer& peer) {
    for (const auto& [index, sent] : peer.fifo) {
      (void)index;
      (void)sent;
      ++result.errors;
      ++answered;
    }
    peer.fifo.clear();
    for (const auto& [id, entry] : peer.pending) {
      (void)id;
      (void)entry;
      ++result.errors;
      ++answered;
    }
    peer.pending.clear();
    peer.outstanding = 0;
  }

  void kill_peer(Peer& peer) {
    if (peer.dead) return;
    peer.dead = true;
    peer.conn->close();
    lose_outstanding(peer);
    if (live_peers > 0) --live_peers;
    maybe_done();
  }

  void maybe_done() {
    const bool all_sent = next_request >= params.requests;
    if (answered >= params.requests || (all_sent && total_outstanding() == 0) ||
        live_peers == 0) {
      loop.stop();
    }
  }

  [[nodiscard]] std::size_t total_outstanding() const {
    std::size_t n = 0;
    for (const Peer& p : peers) n += p.outstanding;
    return n;
  }

  void send_next(Peer& peer) {
    const std::size_t index = next_request++;
    const std::vector<double>& row = params.rows[index % params.rows.size()];
    const Clock::time_point sent = Clock::now();
    if (params.binary) {
      // Request id = index + 1 (0 is reserved for connection-level errors).
      const auto id = static_cast<std::uint32_t>(index + 1);
      std::string frame;
      net::append_frame(frame, net::Opcode::kFeatures, id,
                        net::make_features_payload(params.model, row));
      peer.pending.emplace(id, std::make_pair(index, sent));
      peer.conn->queue_write(frame);
    } else {
      std::string line = "FEATURES " + params.model;
      for (const double v : row) line += " " + format_double(v);
      line += "\n";
      peer.fifo.emplace_back(index, sent);
      peer.conn->queue_write(line);
    }
    ++peer.outstanding;
  }

  /// Tops the peer up to its pipeline budget.
  void pump_sends(Peer& peer) {
    while (!peer.dead && peer.outstanding < params.pipeline &&
           next_request < params.requests) {
      send_next(peer);
    }
  }

  void on_text_data(Peer& peer) {
    net::ByteRing& ring = peer.conn->read_ring();
    while (true) {
      const std::string_view view = ring.readable();
      const std::size_t pos = view.find('\n');
      if (pos == std::string_view::npos) break;
      std::string line(view.substr(0, pos));
      ring.consume(pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (peer.fifo.empty()) {
        // A reply we never asked for (e.g. an accept-time BUSY shed).
        kill_peer(peer);
        return;
      }
      const auto [index, sent] = peer.fifo.front();
      peer.fifo.pop_front();
      double value = std::numeric_limits<double>::quiet_NaN();
      bool is_busy = false;
      bool is_error = false;
      if (line.rfind("OK ", 0) == 0) {
        value = std::strtod(line.c_str() + 3, nullptr);
      } else if (line.rfind("BUSY", 0) == 0) {
        is_busy = true;
      } else {
        is_error = true;
      }
      finish_request(peer, index, sent, value, is_busy, is_error);
    }
    pump_sends(peer);
    maybe_done();
  }

  void on_binary_data(Peer& peer) {
    net::ByteRing& ring = peer.conn->read_ring();
    while (true) {
      net::FrameHeader header;
      std::string error;
      const net::DecodeStatus status = net::decode_header(ring.readable(), header, error, 0);
      if (status == net::DecodeStatus::kMalformed) {
        kill_peer(peer);
        return;
      }
      if (status == net::DecodeStatus::kNeedMore ||
          ring.size() < net::kFrameHeaderBytes + header.payload_len) {
        break;
      }
      const std::string payload(
          ring.readable().substr(net::kFrameHeaderBytes, header.payload_len));
      ring.consume(net::kFrameHeaderBytes + header.payload_len);
      const auto it = peer.pending.find(header.request_id);
      if (it == peer.pending.end()) {
        kill_peer(peer);
        return;
      }
      const auto [index, sent] = it->second;
      peer.pending.erase(it);
      double value = std::numeric_limits<double>::quiet_NaN();
      bool is_busy = header.opcode == net::Opcode::kBusy;
      bool is_error = false;
      if (header.opcode == net::Opcode::kValue && payload.size() == 8) {
        value = net::parse_value_payload(payload);
      } else if (!is_busy) {
        is_error = true;
      }
      finish_request(peer, index, sent, value, is_busy, is_error);
    }
    pump_sends(peer);
    maybe_done();
  }
};

}  // namespace

LoadGenResult run_loadgen(const LoadGenParams& params) {
  if (params.rows.empty()) throw std::invalid_argument("run_loadgen: params.rows is empty");
  if (params.connections == 0) throw std::invalid_argument("run_loadgen: zero connections");

  Driver d(params);
  d.result.values.assign(params.requests, std::numeric_limits<double>::quiet_NaN());
  d.peers.resize(params.connections);

  // Connect everything up front (blocking, bounded), then go non-blocking.
  std::size_t connected = 0;
  for (std::size_t i = 0; i < params.connections; ++i) {
    Peer& peer = d.peers[i];
    try {
      Socket s = tcp_connect(params.host, params.port, params.connect_timeout_ms);
      peer.conn = std::make_unique<net::Connection>(d.loop, s.release(),
                                                    static_cast<std::uint64_t>(i));
    } catch (const std::exception&) {
      peer.dead = true;
      continue;
    }
    ++connected;
    peer.conn->on_data = [&d, &peer](net::Connection&) {
      if (d.params.binary) {
        d.on_binary_data(peer);
      } else {
        d.on_text_data(peer);
      }
    };
    peer.conn->on_eof = [&d, &peer](net::Connection&) { d.kill_peer(peer); };
    peer.conn->on_io_error = [&d, &peer](net::Connection&, const std::string&) {
      d.kill_peer(peer);
    };
  }
  if (connected == 0) throw std::runtime_error("run_loadgen: no connection could be opened");
  d.live_peers = connected;

  d.t0 = Clock::now();
  for (Peer& peer : d.peers) {
    if (!peer.dead) d.pump_sends(peer);
  }
  d.loop.post_after(params.run_timeout_ms, [&d] {
    d.timed_out = true;
    d.loop.stop();
  });
  d.maybe_done();  // degenerate case: zero requests
  d.loop.run();
  const double seconds = std::chrono::duration<double>(Clock::now() - d.t0).count();

  // Whatever never came back (timeout / dead server) counts against errors.
  for (Peer& peer : d.peers) {
    if (!peer.dead) d.lose_outstanding(peer);
  }
  d.result.seconds = seconds;
  d.result.throughput_rps = seconds > 0.0 ? double(d.result.ok) / seconds : 0.0;
  return d.result;
}

}  // namespace aigml::serve
