#pragma once
// Client — blocking TCP client for the aigml prediction protocol.  One
// connection, one outstanding request at a time (the server pipelines
// across connections, not within one).  Used by `aigml client`, the serve
// tests, and the concurrent-clients leg of bench_serve.

#include <cstdint>
#include <span>
#include <string>

#include "aig/aig.hpp"
#include "util/socket.hpp"

namespace aigml::serve {

class Client {
 public:
  Client(const std::string& host, std::uint16_t port);

  /// Ships `g` inline (escaped aag) and returns the predicted delay.
  [[nodiscard]] double predict(const std::string& model, const aig::Aig& g);
  /// Prediction from a pre-extracted feature row.
  [[nodiscard]] double predict_features(const std::string& model, std::span<const double> row);
  /// Asks the server to re-scan its model directory; returns the summary.
  std::string reload();
  /// One-line JSON stats document.
  [[nodiscard]] std::string stats();
  [[nodiscard]] std::string ping();
  void quit();

  /// Sends a raw request line, returns the response payload after "OK";
  /// throws std::runtime_error carrying the message after "ERR".
  std::string request(const std::string& line);

 private:
  Socket socket_;
  LineReader reader_;
};

}  // namespace aigml::serve
