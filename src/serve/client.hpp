#pragma once
// Client — blocking TCP client for the aigml prediction protocol.  One
// connection, one outstanding request at a time (the server pipelines
// across connections, not within one).  Used by `aigml client`, the serve
// tests, and the concurrent-clients leg of bench_serve.
//
// ClientOptions adds deadlines: connect_timeout_ms bounds the TCP connect,
// io_timeout_ms bounds each send and each response read.  0 (the default)
// keeps the historical block-forever behavior.  Deadline expiry surfaces as
// SocketTimeout (socket.hpp); an overloaded server's "BUSY" reply surfaces
// as ServerBusy — both are retriable, and RemoteCost (opt/cost_spec.hpp)
// treats them exactly like a broken connection.

#include <cstdint>
#include <span>
#include <string>

#include "aig/aig.hpp"
#include "util/socket.hpp"

namespace aigml::serve {

/// The server shed this request due to overload; retry later.
struct ServerBusy : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct ClientOptions {
  int connect_timeout_ms = 0;  ///< 0 = block indefinitely
  int io_timeout_ms = 0;       ///< per-send / per-response deadline; 0 = none
};

class Client {
 public:
  Client(const std::string& host, std::uint16_t port, ClientOptions options = {});

  /// Ships `g` inline (escaped aag) and returns the predicted delay.
  [[nodiscard]] double predict(const std::string& model, const aig::Aig& g);
  /// Prediction from a pre-extracted feature row.
  [[nodiscard]] double predict_features(const std::string& model, std::span<const double> row);
  /// The model's family ("gbdt" | "gnn") via the FAMILY verb; throws
  /// std::runtime_error when the model is unknown or the server predates
  /// the verb.
  [[nodiscard]] std::string family(const std::string& model);
  /// Asks the server to re-scan its model directory; returns the summary.
  std::string reload();
  /// One-line JSON stats document.
  [[nodiscard]] std::string stats();
  [[nodiscard]] std::string ping();
  void quit();

  /// Sends a raw request line, returns the response payload after "OK";
  /// throws ServerBusy on "BUSY" and std::runtime_error carrying the
  /// message after "ERR".
  std::string request(const std::string& line);

 private:
  Socket socket_;
  LineReader reader_;
};

}  // namespace aigml::serve
