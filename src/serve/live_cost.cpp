#include "serve/live_cost.hpp"

#include <utility>

namespace aigml::serve {

LiveMlCost::LiveMlCost(const ModelRegistry& registry, std::string delay_model,
                       std::string area_model)
    : registry_(&registry), delay_name_(std::move(delay_model)),
      area_name_(std::move(area_model)) {
  // Generation before snapshots: an install landing in between makes the
  // recorded generation stale, so the first refresh() refetches — the safe
  // direction (the reverse order could pin pre-install snapshots while
  // believing it had seen the post-install generation).
  generation_seen_ = registry_->generation();
  delay_ = registry_->get(delay_name_);
  area_ = registry_->get(area_name_);
  graph_mode_ = delay_->needs_graph() || area_->needs_graph();
}

void LiveMlCost::refresh() {
  const std::uint64_t generation = registry_->generation();
  if (generation == generation_seen_) return;
  generation_seen_ = generation;
  auto delay = registry_->get(delay_name_);
  auto area = registry_->get(area_name_);
  if (delay == delay_ && area == area_) return;  // bump was for another model
  delay_ = std::move(delay);
  area_ = std::move(area);
  graph_mode_ = delay_->needs_graph() || area_->needs_graph();
  ++swaps_;
  if (bound_) {
    if (graph_mode_) {
      // The context cannot re-derive without the graph (header comment):
      // defer — mark every remembered derived value stale so the next
      // evaluate_delta re-runs inference even on a structural no-op.
      ctx_.invalidate_derived();
    } else {
      ctx_.refresh_derived([this](const features::FeatureVector& f) { return predict(f); });
    }
  }
}

opt::QualityEval LiveMlCost::evaluate_impl(const aig::Aig& g) {
  refresh();
  if (graph_mode_) return predict_graph(g);
  return predict(features::extract(g));
}

opt::QualityEval LiveMlCost::bind_impl(const aig::Aig& g) {
  refresh();
  bound_ = true;
  if (graph_mode_) {
    return ctx_.bind_graph(g, [this](const aig::Aig& bound) { return predict_graph(bound); });
  }
  return ctx_.bind(g, [this](const features::FeatureVector& f) { return predict(f); });
}

opt::QualityEval LiveMlCost::evaluate_delta_impl(const aig::Aig& g,
                                                 const aig::DirtyRegion& dirty) {
  refresh();
  if (graph_mode_) {
    return ctx_.evaluate_delta_graph(
        g, dirty, [this](const aig::Aig& candidate) { return predict_graph(candidate); });
  }
  return ctx_.evaluate_delta(g, dirty,
                             [this](const features::FeatureVector& f) { return predict(f); });
}

}  // namespace aigml::serve
