#include "transforms/shuffle.hpp"

#include <vector>

#include "aig/analysis.hpp"
#include "aig/cuts.hpp"
#include "aig/synth.hpp"
#include "util/rng.hpp"

namespace aigml::transforms {

using aig::Aig;
using aig::Lit;
using aig::NodeId;

Aig randomized_rebalance(const Aig& g, std::uint64_t seed, double chain_probability) {
  Rng rng(seed);
  const auto fanout = aig::fanout_counts(g);
  Aig out;
  out.reserve(g.num_nodes());
  std::vector<Lit> remap(g.num_nodes(), aig::kLitInvalid);
  remap[0] = aig::kLitFalse;
  for (std::size_t i = 0; i < g.num_inputs(); ++i) {
    remap[g.inputs()[i]] = out.add_input(g.input_name(i));
  }

  // Same maximal AND-tree collection as balance().
  auto collect_leaves = [&](NodeId root) {
    std::vector<Lit> leaves;
    std::vector<Lit> stack{g.fanin0(root), g.fanin1(root)};
    while (!stack.empty()) {
      const Lit f = stack.back();
      stack.pop_back();
      const NodeId v = aig::lit_var(f);
      if (!aig::lit_is_complemented(f) && g.is_and(v) && fanout[v] == 1) {
        stack.push_back(g.fanin0(v));
        stack.push_back(g.fanin1(v));
      } else {
        leaves.push_back(f);
      }
    }
    return leaves;
  };

  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    if (!g.is_and(id)) continue;
    std::vector<Lit> mapped;
    for (const Lit leaf : collect_leaves(id)) {
      mapped.push_back(aig::lit_not_if(remap[aig::lit_var(leaf)], aig::lit_is_complemented(leaf)));
    }
    if (mapped.size() > 2 && rng.next_bool(chain_probability)) {
      // Chain association in shuffled order: linear depth (pessimal).
      rng.shuffle(mapped);
      Lit acc = mapped[0];
      for (std::size_t i = 1; i < mapped.size(); ++i) acc = out.make_and(acc, mapped[i]);
      remap[id] = acc;
    } else {
      // Random pairing: bushy structures of near-logarithmic depth.
      while (mapped.size() > 1) {
        const std::size_t i = rng.next_below(mapped.size());
        const Lit a = mapped[i];
        mapped.erase(mapped.begin() + static_cast<std::ptrdiff_t>(i));
        const std::size_t j = rng.next_below(mapped.size());
        const Lit b = mapped[j];
        mapped[j] = out.make_and(a, b);
      }
      remap[id] = mapped.empty() ? aig::kLitTrue : mapped.front();
    }
  }

  for (std::size_t i = 0; i < g.num_outputs(); ++i) {
    const Lit o = g.outputs()[i];
    out.add_output(aig::lit_not_if(remap[aig::lit_var(o)], aig::lit_is_complemented(o)),
                   g.output_name(i));
  }
  return out.cleanup();
}

namespace {

/// Deliberately deep (chain-structured) realization of a cut function:
/// ISOP cubes built as literal chains, OR-chained in shuffled order.
/// Compounding this across many nodes stretches graph depth well beyond
/// what optimizing transforms produce — the upper tail of the variant
/// distribution that keeps unseen large designs inside the training range.
Lit synthesize_deep(Aig& out, std::uint64_t table, int nvars, const std::vector<Lit>& leaves,
                    Rng& rng) {
  if (table == aig::tt_const0()) return aig::kLitFalse;
  if (table == aig::tt_const1()) return aig::kLitTrue;
  auto cover = aig::isop(table, aig::tt_const0(), nvars);
  std::vector<std::size_t> order(cover.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  Lit acc = aig::kLitFalse;
  for (const std::size_t k : order) {
    const aig::Cube& cube = cover[k];
    Lit cube_lit = aig::kLitTrue;
    for (int v = 0; v < nvars; ++v) {
      if (cube.pos & (1u << v)) cube_lit = out.make_and(cube_lit, leaves[static_cast<std::size_t>(v)]);
      if (cube.neg & (1u << v)) {
        cube_lit = out.make_and(cube_lit, aig::lit_not(leaves[static_cast<std::size_t>(v)]));
      }
    }
    acc = out.make_or(acc, cube_lit);
  }
  return acc;
}

}  // namespace

Aig randomized_resynthesis(const Aig& g, std::uint64_t seed, double resynth_probability) {
  Rng rng(seed);
  const aig::CutSets cuts(g, aig::CutParams{4, 6});
  Aig out;
  out.reserve(g.num_nodes());
  std::vector<Lit> remap(g.num_nodes(), aig::kLitInvalid);
  remap[0] = aig::kLitFalse;
  for (std::size_t i = 0; i < g.num_inputs(); ++i) {
    remap[g.inputs()[i]] = out.add_input(g.input_name(i));
  }
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    if (!g.is_and(id)) continue;
    const auto& node_cuts = cuts.cuts(id);
    if (!node_cuts.empty() && rng.next_bool(resynth_probability)) {
      const aig::Cut& cut = node_cuts[rng.next_below(node_cuts.size())];
      std::vector<Lit> leaf_lits;
      leaf_lits.reserve(cut.size);
      for (const NodeId leaf : cut.leaf_span()) leaf_lits.push_back(remap[leaf]);
      remap[id] = rng.next_bool(0.5)
                      ? synthesize_deep(out, cut.table, cut.size, leaf_lits, rng)
                      : aig::synthesize_tt_into(out, cut.table, cut.size, leaf_lits);
    } else {
      const Lit f0 = g.fanin0(id);
      const Lit f1 = g.fanin1(id);
      remap[id] = out.make_and(
          aig::lit_not_if(remap[aig::lit_var(f0)], aig::lit_is_complemented(f0)),
          aig::lit_not_if(remap[aig::lit_var(f1)], aig::lit_is_complemented(f1)));
    }
  }
  for (std::size_t i = 0; i < g.num_outputs(); ++i) {
    const Lit o = g.outputs()[i];
    out.add_output(aig::lit_not_if(remap[aig::lit_var(o)], aig::lit_is_complemented(o)),
                   g.output_name(i));
  }
  return out.cleanup();
}

TransformResult randomized_rebalance_traced(const Aig& g, std::uint64_t seed,
                                            double chain_probability) {
  return traced(g, randomized_rebalance(g, seed, chain_probability));
}

TransformResult randomized_resynthesis_traced(const Aig& g, std::uint64_t seed,
                                              double resynth_probability) {
  return traced(g, randomized_resynthesis(g, seed, resynth_probability));
}

}  // namespace aigml::transforms
