#pragma once
// AND-tree balancing (ABC's `balance`): rebuilds the graph bottom-up,
// collapsing maximal single-fanout AND trees and re-associating them as
// level-minimal balanced trees.  Purely structural, equivalence-preserving,
// and the classic depth-reduction move of the optimization scripts.
//
// Invariants: the PI/PO interface (count, order, names) is preserved; the
// result is cleaned up (no dead nodes) and structurally hashed; node ids
// remain topological.  Deterministic: identical inputs produce identical
// outputs, which is what makes balance_traced's dirty region meaningful.

#include "aig/aig.hpp"
#include "transforms/traced.hpp"

namespace aigml::transforms {

/// Returns a balanced, cleaned-up copy of `g` (same PI/PO interface).
[[nodiscard]] aig::Aig balance(const aig::Aig& g);

/// balance() plus the dirty region vs. `g` for incremental evaluation
/// (traced.hpp).  Bit-identical graph to balance(g).
[[nodiscard]] TransformResult balance_traced(const aig::Aig& g);

}  // namespace aigml::transforms
