#pragma once
// AND-tree balancing (ABC's `balance`): rebuilds the graph bottom-up,
// collapsing maximal single-fanout AND trees and re-associating them as
// level-minimal balanced trees.  Purely structural, equivalence-preserving,
// and the classic depth-reduction move of the optimization scripts.

#include "aig/aig.hpp"

namespace aigml::transforms {

/// Returns a balanced, cleaned-up copy of `g` (same PI/PO interface).
[[nodiscard]] aig::Aig balance(const aig::Aig& g);

}  // namespace aigml::transforms
