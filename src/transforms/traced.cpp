#include "transforms/traced.hpp"

#include "transforms/scripts.hpp"

namespace aigml::transforms {

TransformResult traced(const aig::Aig& input, aig::Aig result) {
  TransformResult out;
  out.dirty = aig::diff_region(input, result);
  out.graph = std::move(result);
  return out;
}

TransformResult apply_primitive_traced(const std::string& mnemonic, const aig::Aig& g) {
  return traced(g, apply_primitive(mnemonic, g));
}

}  // namespace aigml::transforms
