#pragma once
// Randomized, equivalence-preserving restructuring for *variant generation*.
//
// The 103 optimization scripts are deterministic and confluent: on small
// designs a random walk over them saturates after a few dozen structures,
// nowhere near the paper's 40k unique AIGs per design.  ABC escapes this
// because its transform set is far richer; we escape it with a seeded
// diversification move: rebuild the graph re-associating every maximal
// AND tree in a random order (and optionally through a randomly-ordered
// XOR-chain detection).  Function is preserved exactly; structure, depth,
// and fanout distributions vary widely — precisely the diversity the
// dataset needs.  Not part of the SA move set.

#include <cstdint>

#include "aig/aig.hpp"
#include "transforms/traced.hpp"

namespace aigml::transforms {

/// Rebuilds `g` with random re-association of AND trees.  Deterministic in
/// (g, seed); different seeds yield (typically) different structures.
/// Each tree is rebuilt either by random pairing (bushy, near-log depth) or
/// — with probability `chain_probability` — as a randomly-ordered chain
/// (linear depth).  Chains stretch the depth/delay distribution upward so
/// that training-design variant pools cover the delay range of larger
/// unseen designs (tree models cannot extrapolate beyond their label range).
[[nodiscard]] aig::Aig randomized_rebalance(const aig::Aig& g, std::uint64_t seed,
                                            double chain_probability = 0.3);

/// Rebuilds `g`, resynthesizing each node from a *randomly chosen* k-cut
/// with probability `resynth_probability` (ISOP/parity reconstruction,
/// ignoring cost).  Restructures XOR/MUX-rich logic that AND-tree
/// re-association cannot touch.  Deterministic in (g, seed).
[[nodiscard]] aig::Aig randomized_resynthesis(const aig::Aig& g, std::uint64_t seed,
                                              double resynth_probability = 0.2);

/// Traced variants (traced.hpp): the shuffles re-associate globally, so
/// their dirty regions are typically large — they exist so *every* move
/// source can feed the incremental evaluation pipeline, and so the fuzz
/// tests can stress AnalysisCache::update with worst-case regions.
[[nodiscard]] TransformResult randomized_rebalance_traced(const aig::Aig& g, std::uint64_t seed,
                                                          double chain_probability = 0.3);
[[nodiscard]] TransformResult randomized_resynthesis_traced(const aig::Aig& g, std::uint64_t seed,
                                                            double resynth_probability = 0.2);

}  // namespace aigml::transforms
