#include "transforms/scripts.hpp"

#include <stdexcept>

#include "transforms/balance.hpp"
#include "transforms/resynth.hpp"

namespace aigml::transforms {

const std::vector<std::string>& primitive_names() {
  static const std::vector<std::string> names = {"b", "rw", "rwd", "rw3", "rf", "rfd", "rs"};
  return names;
}

aig::Aig apply_primitive(const std::string& mnemonic, const aig::Aig& g) {
  if (mnemonic == "b") return balance(g);
  if (mnemonic == "rw") return rewrite(g);
  if (mnemonic == "rwd") return rewrite_depth(g);
  if (mnemonic == "rw3") return rewrite_k3(g);
  if (mnemonic == "rf") return refactor(g);
  if (mnemonic == "rfd") return refactor_depth(g);
  if (mnemonic == "rs") return resub(g);
  throw std::out_of_range("apply_primitive: unknown mnemonic '" + mnemonic + "'");
}

ScriptRegistry::ScriptRegistry() {
  const auto& prim = primitive_names();
  auto add = [this](std::vector<std::string> steps) {
    Script s;
    s.steps = std::move(steps);
    for (std::size_t i = 0; i < s.steps.size(); ++i) {
      if (i) s.name += ';';
      s.name += s.steps[i];
    }
    scripts_.push_back(std::move(s));
  };
  // 7 singletons.
  for (const auto& p : prim) add({p});
  // 49 pairs.
  for (const auto& p : prim) {
    for (const auto& q : prim) add({p, q});
  }
  // First 47 triples in lexicographic order over primitive indices.
  int remaining = kNumScripts - static_cast<int>(scripts_.size());
  for (const auto& p : prim) {
    for (const auto& q : prim) {
      for (const auto& r : prim) {
        if (remaining == 0) return;
        add({p, q, r});
        --remaining;
      }
    }
  }
}

aig::Aig ScriptRegistry::apply(std::size_t index, const aig::Aig& g) const {
  const Script& s = script(index);
  aig::Aig current = g;
  for (const std::string& step : s.steps) {
    current = apply_primitive(step, current);
  }
  return current;
}

TransformResult ScriptRegistry::apply_traced(std::size_t index, const aig::Aig& g) const {
  return traced(g, apply(index, g));
}

const ScriptRegistry& script_registry() {
  static const ScriptRegistry registry;
  return registry;
}

}  // namespace aigml::transforms
