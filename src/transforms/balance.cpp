#include "transforms/balance.hpp"

#include <algorithm>
#include <vector>

#include "aig/analysis.hpp"

namespace aigml::transforms {

using aig::Aig;
using aig::Lit;
using aig::NodeId;

namespace {

/// Tracks node levels of a graph under construction.
class LevelledBuilder {
 public:
  explicit LevelledBuilder(std::size_t reserve) { out_.reserve(reserve); }

  Lit add_input(const std::string& name) {
    const Lit lit = out_.add_input(name);
    sync_levels();
    return lit;
  }

  Lit make_and(Lit a, Lit b) {
    const Lit lit = out_.make_and(a, b);
    sync_levels();
    return lit;
  }

  [[nodiscard]] std::uint32_t level(Lit lit) const { return levels_[aig::lit_var(lit)]; }
  [[nodiscard]] Aig& graph() noexcept { return out_; }

 private:
  void sync_levels() {
    for (NodeId id = static_cast<NodeId>(levels_.size()); id < out_.num_nodes(); ++id) {
      if (out_.is_and(id)) {
        levels_.push_back(1 + std::max(levels_[aig::lit_var(out_.fanin0(id))],
                                       levels_[aig::lit_var(out_.fanin1(id))]));
      } else {
        levels_.push_back(0);
      }
    }
  }

  Aig out_;
  std::vector<std::uint32_t> levels_ = {0};  // constant node
};

}  // namespace

Aig balance(const Aig& g) {
  const auto fanout = aig::fanout_counts(g);
  LevelledBuilder builder(g.num_nodes());
  std::vector<Lit> remap(g.num_nodes(), aig::kLitInvalid);
  remap[0] = aig::kLitFalse;
  for (std::size_t i = 0; i < g.num_inputs(); ++i) {
    remap[g.inputs()[i]] = builder.add_input(g.input_name(i));
  }

  // Collects the leaves of the maximal AND tree rooted at `root`: descend
  // through uncomplemented, single-fanout AND fanins (complemented edges and
  // shared nodes are tree boundaries).
  auto collect_leaves = [&](NodeId root) {
    std::vector<Lit> leaves;
    std::vector<Lit> stack{g.fanin0(root), g.fanin1(root)};
    while (!stack.empty()) {
      const Lit f = stack.back();
      stack.pop_back();
      const NodeId v = aig::lit_var(f);
      if (!aig::lit_is_complemented(f) && g.is_and(v) && fanout[v] == 1) {
        stack.push_back(g.fanin0(v));
        stack.push_back(g.fanin1(v));
      } else {
        leaves.push_back(f);
      }
    }
    return leaves;
  };

  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    if (!g.is_and(id)) continue;
    // Map tree leaves into the new graph.
    std::vector<Lit> mapped;
    for (const Lit leaf : collect_leaves(id)) {
      mapped.push_back(aig::lit_not_if(remap[aig::lit_var(leaf)], aig::lit_is_complemented(leaf)));
    }
    // Huffman-style level-minimal combination: repeatedly AND the two
    // shallowest operands.  Sorting descending lets us pop from the back.
    std::sort(mapped.begin(), mapped.end(), [&](Lit x, Lit y) {
      return builder.level(x) > builder.level(y);
    });
    while (mapped.size() > 1) {
      const Lit a = mapped.back();
      mapped.pop_back();
      const Lit b = mapped.back();
      mapped.pop_back();
      const Lit combined = builder.make_and(a, b);
      // Insert keeping the descending-level order.
      const auto pos = std::lower_bound(
          mapped.begin(), mapped.end(), combined,
          [&](Lit x, Lit y) { return builder.level(x) > builder.level(y); });
      mapped.insert(pos, combined);
    }
    remap[id] = mapped.empty() ? aig::kLitTrue : mapped.front();
  }

  for (std::size_t i = 0; i < g.num_outputs(); ++i) {
    const Lit o = g.outputs()[i];
    builder.graph().add_output(
        aig::lit_not_if(remap[aig::lit_var(o)], aig::lit_is_complemented(o)), g.output_name(i));
  }
  return builder.graph().cleanup();
}

TransformResult balance_traced(const Aig& g) { return traced(g, balance(g)); }

}  // namespace aigml::transforms
