#pragma once
// Unified cut-based resynthesis: one engine implements the rewrite /
// refactor / resubstitution family of ABC-style transforms.
//
// The pass rebuilds the graph in topological order.  For every AND node it
// gathers *candidate implementations* expressed over already-rebuilt logic:
//
//   * the default reconstruction (AND of the two mapped fanins),
//   * ISOP/parity resynthesis of each enumerated k-cut function (rewrite),
//   * ISOP/parity resynthesis of a reconvergence-driven cut of up to 6
//     leaves (refactor),
//   * expressions over functionally-equivalent divisors found by exact
//     truth-table comparison inside the reconvergence window (resub).
//
// Each candidate is *costed without mutating the graph* using aig::AndProber
// (number of genuinely new AND nodes, exploiting all sharing with logic
// built so far) plus the resulting level; the winner is then realized.
// Nodes orphaned by better implementations die in the final cleanup().
//
// Every candidate's function over its (structural or support-minimized) cut
// is exact on all circuit-reachable leaf valuations, so the whole pass is
// equivalence-preserving; tests enforce this on every generator circuit.

#include <cstdint>

#include "aig/aig.hpp"
#include "transforms/traced.hpp"

namespace aigml::transforms {

enum class CutSource : std::uint8_t {
  Enumerated,     ///< k-feasible cuts (rewrite-style)
  Reconvergence,  ///< one grown window cut per node (refactor-style)
};

struct ResynthParams {
  CutSource source = CutSource::Enumerated;
  int cut_size = 4;            ///< enumerated-cut size (2..6)
  int cuts_per_node = 8;       ///< enumerated-cut budget
  int reconv_max_leaves = 6;   ///< reconvergence window width (2..6)
  bool try_resub = false;      ///< enable divisor substitution candidates
  int max_divisors = 24;       ///< divisor budget per window
  bool prefer_depth = false;   ///< optimize (level, count) instead of (count, level)
};

/// Applies one resynthesis pass; returns the cleaned-up result.  The PI/PO
/// interface is preserved and node ids stay topological; nodes before the
/// first accepted rewrite keep their ids, which keeps the traced variant's
/// dirty region tight for local changes.
[[nodiscard]] aig::Aig resynthesize(const aig::Aig& g, const ResynthParams& params);

/// resynthesize() plus the dirty region vs. `g` for incremental evaluation
/// (traced.hpp).  Bit-identical graph to resynthesize(g, params).
[[nodiscard]] TransformResult resynthesize_traced(const aig::Aig& g, const ResynthParams& params);

// Named presets mirroring the ABC vocabulary.
[[nodiscard]] aig::Aig rewrite(const aig::Aig& g);          ///< rw: 4-cut, area-first
[[nodiscard]] aig::Aig rewrite_depth(const aig::Aig& g);    ///< rwd: 4-cut, depth-first
[[nodiscard]] aig::Aig rewrite_k3(const aig::Aig& g);       ///< rw3: 3-cut, area-first
[[nodiscard]] aig::Aig refactor(const aig::Aig& g);         ///< rf: reconvergence, area-first
[[nodiscard]] aig::Aig refactor_depth(const aig::Aig& g);   ///< rfd: reconvergence, depth-first
[[nodiscard]] aig::Aig resub(const aig::Aig& g);            ///< rs: window resubstitution

}  // namespace aigml::transforms
