#include "transforms/resynth.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <vector>

#include "aig/analysis.hpp"
#include "aig/cuts.hpp"
#include "aig/synth.hpp"
#include "aig/truth.hpp"

namespace aigml::transforms {

using aig::Aig;
using aig::AndProber;
using aig::Cut;
using aig::Lit;
using aig::NodeId;

namespace {

/// Cost of a candidate: AND nodes that would be added + resulting level.
struct CandidateCost {
  int added_nodes = 0;
  std::uint32_t level = 0;
};

bool cheaper(const CandidateCost& a, const CandidateCost& b, bool prefer_depth) {
  if (prefer_depth) {
    if (a.level != b.level) return a.level < b.level;
    return a.added_nodes < b.added_nodes;
  }
  if (a.added_nodes != b.added_nodes) return a.added_nodes < b.added_nodes;
  return a.level < b.level;
}

/// A candidate is a closure that emits the implementation through an AndFn;
/// running it against an AndProber costs it, against the real graph builds it.
using Recipe = std::function<Lit(const aig::AndFn&)>;

/// Reconvergence-driven cut: grow from the node's fanins, expanding the leaf
/// whose replacement by its fanins increases the leaf count least, while
/// staying within `max_leaves`.  The result is always a *structural* cut.
std::vector<NodeId> reconvergence_cut(const Aig& g, NodeId root, int max_leaves) {
  std::vector<NodeId> leaves{aig::lit_var(g.fanin0(root)), aig::lit_var(g.fanin1(root))};
  std::sort(leaves.begin(), leaves.end());
  leaves.erase(std::unique(leaves.begin(), leaves.end()), leaves.end());
  while (true) {
    int best_index = -1;
    int best_growth = max_leaves + 1;
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      const NodeId leaf = leaves[i];
      if (!g.is_and(leaf)) continue;
      const NodeId c0 = aig::lit_var(g.fanin0(leaf));
      const NodeId c1 = aig::lit_var(g.fanin1(leaf));
      int growth = -1;  // removing the expanded leaf
      if (std::find(leaves.begin(), leaves.end(), c0) == leaves.end()) ++growth;
      if (c1 != c0 && std::find(leaves.begin(), leaves.end(), c1) == leaves.end()) ++growth;
      if (static_cast<int>(leaves.size()) + growth <= max_leaves && growth < best_growth) {
        best_growth = growth;
        best_index = static_cast<int>(i);
      }
    }
    if (best_index < 0) break;
    const NodeId leaf = leaves[static_cast<std::size_t>(best_index)];
    leaves.erase(leaves.begin() + best_index);
    for (const Lit f : {g.fanin0(leaf), g.fanin1(leaf)}) {
      const NodeId v = aig::lit_var(f);
      if (std::find(leaves.begin(), leaves.end(), v) == leaves.end()) leaves.push_back(v);
    }
    std::sort(leaves.begin(), leaves.end());
  }
  return leaves;
}

/// Nodes strictly between `root` and `leaves` (excluding both), topological.
std::vector<NodeId> window_nodes(const Aig& g, NodeId root, const std::vector<NodeId>& leaves) {
  std::vector<char> is_leaf(g.num_nodes(), 0);
  for (const NodeId l : leaves) is_leaf[l] = 1;
  std::vector<NodeId> stack{aig::lit_var(g.fanin0(root)), aig::lit_var(g.fanin1(root))};
  std::vector<char> seen(g.num_nodes(), 0);
  std::vector<NodeId> nodes;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (seen[id] || is_leaf[id] || !g.is_and(id)) continue;
    seen[id] = 1;
    nodes.push_back(id);
    stack.push_back(aig::lit_var(g.fanin0(id)));
    stack.push_back(aig::lit_var(g.fanin1(id)));
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

/// Local truth tables over the window: leaves get elementary variables,
/// window nodes (and the root) evaluate structurally.  Exact because the
/// leaf set is a structural cut.
struct WindowTables {
  std::uint64_t root_table = 0;
  std::vector<std::pair<NodeId, std::uint64_t>> divisors;  ///< node id -> table
};

WindowTables window_tables(const Aig& g, NodeId root, const std::vector<NodeId>& leaves,
                           const std::vector<NodeId>& inner, int max_divisors) {
  std::vector<std::uint64_t> value(g.num_nodes(), 0);
  std::vector<char> known(g.num_nodes(), 0);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    value[leaves[i]] = aig::tt_var(static_cast<int>(i));
    known[leaves[i]] = 1;
  }
  WindowTables out;
  auto eval = [&](NodeId id) {
    const Lit f0 = g.fanin0(id);
    const Lit f1 = g.fanin1(id);
    const std::uint64_t v0 =
        value[aig::lit_var(f0)] ^ (aig::lit_is_complemented(f0) ? ~0ULL : 0ULL);
    const std::uint64_t v1 =
        value[aig::lit_var(f1)] ^ (aig::lit_is_complemented(f1) ? ~0ULL : 0ULL);
    value[id] = v0 & v1;
    known[id] = 1;
  };
  for (const NodeId id : inner) {
    eval(id);
    if (static_cast<int>(out.divisors.size()) < max_divisors) {
      out.divisors.emplace_back(id, value[id]);
    }
  }
  // Leaves are divisors too (buffers/complements of leaves are candidates).
  for (const NodeId l : leaves) {
    if (static_cast<int>(out.divisors.size()) < max_divisors) {
      out.divisors.emplace_back(l, value[l]);
    }
  }
  eval(root);
  out.root_table = value[root];
  return out;
}

/// The resynthesis pass.
class ResynthPass {
 public:
  ResynthPass(const Aig& g, const ResynthParams& params) : g_(g), params_(params) {
    if (params.source == CutSource::Enumerated) {
      cuts_.emplace(g, aig::CutParams{params.cut_size, params.cuts_per_node});
    }
  }

  Aig run() {
    remap_.assign(g_.num_nodes(), aig::kLitInvalid);
    remap_[0] = aig::kLitFalse;
    out_.reserve(g_.num_nodes());
    for (std::size_t i = 0; i < g_.num_inputs(); ++i) {
      remap_[g_.inputs()[i]] = out_.add_input(g_.input_name(i));
    }
    sync_levels();
    for (NodeId id = 0; id < g_.num_nodes(); ++id) {
      if (g_.is_and(id)) process(id);
    }
    for (std::size_t i = 0; i < g_.num_outputs(); ++i) {
      const Lit o = g_.outputs()[i];
      out_.add_output(aig::lit_not_if(remap_[aig::lit_var(o)], aig::lit_is_complemented(o)),
                      g_.output_name(i));
    }
    return out_.cleanup();
  }

 private:
  void sync_levels() {
    for (NodeId id = static_cast<NodeId>(out_levels_.size()); id < out_.num_nodes(); ++id) {
      if (out_.is_and(id)) {
        out_levels_.push_back(1 + std::max(out_levels_[aig::lit_var(out_.fanin0(id))],
                                           out_levels_[aig::lit_var(out_.fanin1(id))]));
      } else {
        out_levels_.push_back(0);
      }
    }
  }

  Lit mapped(Lit lit) const {
    return aig::lit_not_if(remap_[aig::lit_var(lit)], aig::lit_is_complemented(lit));
  }

  CandidateCost cost_of(const Recipe& recipe) {
    AndProber prober(out_, out_levels_);
    const Lit result = recipe([&prober](Lit a, Lit b) { return prober(a, b); });
    return CandidateCost{prober.misses(), prober.level_of(result)};
  }

  void process(NodeId id) {
    std::vector<Recipe> recipes;
    // (a) default reconstruction.
    const Lit d0 = mapped(g_.fanin0(id));
    const Lit d1 = mapped(g_.fanin1(id));
    recipes.push_back([d0, d1](const aig::AndFn& fn) { return fn(d0, d1); });

    if (params_.source == CutSource::Enumerated) {
      for (const Cut& cut : cuts_->cuts(id)) {
        std::vector<Lit> leaf_lits;
        leaf_lits.reserve(cut.size);
        for (const NodeId leaf : cut.leaf_span()) {
          leaf_lits.push_back(remap_[leaf]);
        }
        const std::uint64_t table = cut.table;
        const int nvars = cut.size;
        recipes.push_back([table, nvars, leaf_lits](const aig::AndFn& fn) {
          return aig::synthesize_tt(fn, table, nvars, leaf_lits);
        });
      }
    } else {
      const auto leaves = reconvergence_cut(g_, id, params_.reconv_max_leaves);
      const auto inner = window_nodes(g_, id, leaves);
      const auto tables = window_tables(g_, id, leaves, inner,
                                        params_.try_resub ? params_.max_divisors : 0);
      std::vector<Lit> leaf_lits;
      leaf_lits.reserve(leaves.size());
      for (const NodeId leaf : leaves) leaf_lits.push_back(remap_[leaf]);
      const std::uint64_t table = tables.root_table;
      const int nvars = static_cast<int>(leaves.size());
      recipes.push_back([table, nvars, leaf_lits](const aig::AndFn& fn) {
        return aig::synthesize_tt(fn, table, nvars, leaf_lits);
      });
      if (params_.try_resub) add_resub_recipes(tables, recipes);
    }

    // Cost all candidates, realize the winner.
    std::size_t best = 0;
    CandidateCost best_cost = cost_of(recipes[0]);
    for (std::size_t i = 1; i < recipes.size(); ++i) {
      const CandidateCost c = cost_of(recipes[i]);
      if (cheaper(c, best_cost, params_.prefer_depth)) {
        best_cost = c;
        best = i;
      }
    }
    remap_[id] = recipes[best]([this](Lit a, Lit b) { return out_.make_and(a, b); });
    sync_levels();
  }

  /// Divisor-pair candidates: exact matches of the root function by a single
  /// divisor or a simple gate over two divisors.
  void add_resub_recipes(const WindowTables& tables, std::vector<Recipe>& recipes) const {
    const std::uint64_t target = tables.root_table;
    const auto& divs = tables.divisors;
    for (std::size_t i = 0; i < divs.size(); ++i) {
      const Lit di = remap_[divs[i].first];
      const std::uint64_t ti = divs[i].second;
      if (ti == target) {
        recipes.push_back([di](const aig::AndFn&) { return di; });
        continue;  // exact copies beat anything else involving this divisor
      }
      if (~ti == target) {
        recipes.push_back([di](const aig::AndFn&) { return aig::lit_not(di); });
        continue;
      }
      for (std::size_t j = i + 1; j < divs.size(); ++j) {
        const Lit dj = remap_[divs[j].first];
        const std::uint64_t tj = divs[j].second;
        // AND with all polarity combinations (covers OR/NOR via output
        // complement when the target matches the complemented form).
        for (int neg = 0; neg < 4; ++neg) {
          const std::uint64_t a = (neg & 1) ? ~ti : ti;
          const std::uint64_t b = (neg & 2) ? ~tj : tj;
          const Lit la = aig::lit_not_if(di, (neg & 1) != 0);
          const Lit lb = aig::lit_not_if(dj, (neg & 2) != 0);
          if ((a & b) == target) {
            recipes.push_back([la, lb](const aig::AndFn& fn) { return fn(la, lb); });
          } else if (~(a & b) == target) {
            recipes.push_back(
                [la, lb](const aig::AndFn& fn) { return aig::lit_not(fn(la, lb)); });
          }
        }
        if ((ti ^ tj) == target || (ti ^ tj) == ~target) {
          const bool complemented = (ti ^ tj) == ~target;
          recipes.push_back([di, dj, complemented](const aig::AndFn& fn) {
            const Lit p = fn(di, aig::lit_not(dj));
            const Lit q = fn(aig::lit_not(di), dj);
            const Lit x = aig::lit_not(fn(aig::lit_not(p), aig::lit_not(q)));
            return aig::lit_not_if(x, complemented);
          });
        }
      }
    }
  }

  const Aig& g_;
  ResynthParams params_;
  std::optional<aig::CutSets> cuts_;
  Aig out_;
  std::vector<Lit> remap_;
  std::vector<std::uint32_t> out_levels_;
};

}  // namespace

Aig resynthesize(const Aig& g, const ResynthParams& params) {
  if (params.cut_size < 2 || params.cut_size > aig::kTtMaxVars) {
    throw std::invalid_argument("resynthesize: cut_size out of range");
  }
  if (params.reconv_max_leaves < 2 || params.reconv_max_leaves > aig::kTtMaxVars) {
    throw std::invalid_argument("resynthesize: reconv_max_leaves out of range");
  }
  ResynthPass pass(g, params);
  return pass.run();
}

Aig rewrite(const Aig& g) {
  ResynthParams p;
  p.source = CutSource::Enumerated;
  p.cut_size = 4;
  return resynthesize(g, p);
}

Aig rewrite_depth(const Aig& g) {
  ResynthParams p;
  p.source = CutSource::Enumerated;
  p.cut_size = 4;
  p.prefer_depth = true;
  return resynthesize(g, p);
}

Aig rewrite_k3(const Aig& g) {
  ResynthParams p;
  p.source = CutSource::Enumerated;
  p.cut_size = 3;
  return resynthesize(g, p);
}

Aig refactor(const Aig& g) {
  ResynthParams p;
  p.source = CutSource::Reconvergence;
  return resynthesize(g, p);
}

Aig refactor_depth(const Aig& g) {
  ResynthParams p;
  p.source = CutSource::Reconvergence;
  p.prefer_depth = true;
  return resynthesize(g, p);
}

Aig resub(const Aig& g) {
  ResynthParams p;
  p.source = CutSource::Reconvergence;
  p.try_resub = true;
  return resynthesize(g, p);
}

TransformResult resynthesize_traced(const Aig& g, const ResynthParams& params) {
  return traced(g, resynthesize(g, params));
}

}  // namespace aigml::transforms
