#pragma once
// Traced transforms — the mutation-reporting side of the incremental move
// evaluation pipeline (DESIGN.md §8).
//
// Every transform in this library is rebuild-style: it returns a fresh,
// cleaned-up graph rather than mutating in place.  A *traced* variant pairs
// that result with the aig::DirtyRegion separating it from the input, so the
// optimization loop can hand both to an incremental evaluator
// (AnalysisCache::update + features::IncrementalExtractor) instead of
// re-analyzing the whole graph.  Because node ids are topological and
// rebuilds preserve the untouched prefix, the reported region is tight for
// local moves and degenerates gracefully (up to `full`) for global ones —
// correctness never depends on tightness, only speed does.
//
// Per-transform traced entry points live next to their transforms
// (balance.hpp, resynth.hpp, shuffle.hpp); script-level tracing lives on
// transforms::ScriptRegistry::apply_traced (one region per multi-step
// script, diffed end to end).

#include <string>

#include "aig/aig.hpp"
#include "aig/dirty.hpp"

namespace aigml::transforms {

/// A transform's output graph plus the dirty region vs. its input graph.
struct TransformResult {
  aig::Aig graph;
  aig::DirtyRegion dirty;
};

/// Wraps the `graph = f(input)` convention: computes the dirty region of an
/// already-produced result against its input.
[[nodiscard]] TransformResult traced(const aig::Aig& input, aig::Aig result);

/// Traced apply_primitive (scripts.hpp): applies one primitive by mnemonic
/// and reports the touched region.  Throws std::out_of_range for unknown
/// mnemonics.
[[nodiscard]] TransformResult apply_primitive_traced(const std::string& mnemonic,
                                                     const aig::Aig& g);

}  // namespace aigml::transforms
