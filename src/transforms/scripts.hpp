#pragma once
// Optimization-script registry.
//
// The paper's baseline flow draws, at each SA iteration, one of "103
// combinations of the basic transformations available in ABC" (abc.rc).  We
// reproduce that: seven primitive passes (balance, rewrite variants,
// refactor variants, resubstitution) are composed into exactly 103 distinct
// sequences — all 7 singletons, all 49 pairs, and the first 47 triples in
// deterministic lexicographic order.  Scripts are addressed by index or
// name ("rw;rf;b") and are the SA move set for every flow in the paper.

#include <cstdint>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "transforms/traced.hpp"
#include "util/rng.hpp"

namespace aigml::transforms {

inline constexpr int kNumScripts = 103;

struct Script {
  std::string name;                 ///< e.g. "rw;rf;b"
  std::vector<std::string> steps;   ///< primitive mnemonics in order
};

/// Available primitive mnemonics: b, rw, rwd, rw3, rf, rfd, rs.
[[nodiscard]] const std::vector<std::string>& primitive_names();

/// Applies one primitive by mnemonic; throws std::out_of_range for unknown
/// names.
[[nodiscard]] aig::Aig apply_primitive(const std::string& mnemonic, const aig::Aig& g);

class ScriptRegistry {
 public:
  /// Builds the canonical 103-script registry.
  ScriptRegistry();

  [[nodiscard]] const std::vector<Script>& scripts() const noexcept { return scripts_; }
  [[nodiscard]] const Script& script(std::size_t index) const { return scripts_.at(index); }
  [[nodiscard]] std::size_t size() const noexcept { return scripts_.size(); }

  /// Applies script `index` to `g`.
  [[nodiscard]] aig::Aig apply(std::size_t index, const aig::Aig& g) const;

  /// Applies script `index` and reports the dirty region vs. `g` — one
  /// end-to-end region per script, not per step (tighter and cheaper than
  /// composing per-primitive regions).  The graph is bit-identical to
  /// apply(index, g); opt::search_loop feeds the region to incremental
  /// evaluators (DESIGN.md §8).
  [[nodiscard]] TransformResult apply_traced(std::size_t index, const aig::Aig& g) const;

  /// Uniformly random script index.
  [[nodiscard]] std::size_t random_index(Rng& rng) const { return rng.next_below(scripts_.size()); }

 private:
  std::vector<Script> scripts_;
};

/// Process-wide registry instance (construction is cheap and immutable).
[[nodiscard]] const ScriptRegistry& script_registry();

}  // namespace aigml::transforms
