#pragma once
// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component of the library (variant generation, simulated
// annealing, model training, simulation patterns) draws from an explicitly
// seeded Rng so that reruns regenerate byte-identical tables.

#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace aigml {

/// splitmix64: used to expand a single seed into stream state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator.  Small, fast, and statistically strong enough for
/// Monte-Carlo style experiments; not cryptographic.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed'0000'0000'0001ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return std::numeric_limits<result_type>::max(); }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection method (debiased).
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) noexcept {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) noexcept { return lo + (hi - lo) * next_double(); }

  /// Bernoulli draw.
  bool next_bool(double p_true = 0.5) noexcept { return next_double() < p_true; }

  /// Standard normal via Marsaglia polar method.
  double next_gaussian() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = next_double(-1.0, 1.0);
      v = next_double(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return u * factor;
  }

  /// Pick a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& items) noexcept {
    return items[next_below(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = next_below(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Derive an independent child stream (for per-task determinism regardless
  /// of evaluation order).
  Rng fork() noexcept { return Rng(next()); }

  /// Derive the child stream for task `task_id` *without* advancing this
  /// generator.  The same (parent state, task_id) pair always yields the same
  /// stream, so a coordinator can hand out per-task generators whose output
  /// is independent of scheduling order and thread count.
  [[nodiscard]] Rng fork(std::uint64_t task_id) const noexcept {
    std::uint64_t mix = state_[0] ^ rotl(state_[1], 29) ^ (task_id + 0x9e3779b97f4a7c15ULL);
    return Rng(splitmix64(mix));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace aigml
