#pragma once
// Durable file I/O helpers (DESIGN.md §10).  The crash-safety invariant for
// every state file this library writes (model saves, replay rewrites) is
// write-to-temp + fsync + atomic rename + fsync(parent dir): a reader at any
// instant sees either the complete old file or the complete new one, never a
// torn hybrid — and after the rename returns, the new content survives power
// loss.

#include <filesystem>
#include <string>

namespace aigml::fsio {

/// Flushes a file's (or directory's) contents to stable storage.  Throws
/// std::runtime_error with errno text when the path cannot be opened or
/// synced; EINVAL from filesystems that reject directory fsync is ignored.
void fsync_path(const std::filesystem::path& path);

/// Atomically replaces `path` with `bytes`: writes `<path>.tmp.<pid>` in the
/// same directory, fsyncs it, renames it over `path`, and fsyncs the parent
/// directory so the rename itself is durable.
void write_file_atomic(const std::filesystem::path& path, const std::string& bytes);

/// Durable rename: rename(from, to) + fsync of to's parent directory.
/// `from` must already be synced by the caller.
void rename_durable(const std::filesystem::path& from, const std::filesystem::path& to);

}  // namespace aigml::fsio
