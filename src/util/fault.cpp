#include "util/fault.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>
#include <stdexcept>
#include <thread>

#include "util/rng.hpp"

namespace aigml::fault {

namespace {

constexpr const char* kSiteNames[kNumSites] = {
    "socket.connect", "socket.read",    "socket.write", "socket.partial-write",
    "socket.delay",   "server.kill",    "model.truncate", "worker.throw",
    "replay.tear",    "retrain.throw",  "net.accept",   "net.epoll_spurious",
    "net.slot_stall", "spec.commit_abort",
};

/// Per-site runtime state.  Counters are atomic (sites are visited from
/// server handler threads, labeling workers, ...); the RNG for prob= draws
/// is mutex-guarded — it is only reached when a plan is installed AND the
/// rule is probabilistic, never on the production fast path.
struct SiteState {
  std::atomic<std::uint64_t> visits{0};
  std::atomic<std::uint64_t> fired{0};
  std::mutex rng_mutex;
  Rng rng;
};

struct Runtime {
  FaultPlan plan;
  SiteState sites[kNumSites];
};

std::mutex g_install_mutex;
std::atomic<Runtime*> g_runtime{nullptr};
/// Replaced runtimes are retired here instead of deleted: a handler thread
/// may still be inside fire_slow() on the old runtime when a test swaps
/// plans.  The list is never freed (kept reachable so leak checkers stay
/// quiet); churn is bounded by the number of install()/clear() calls, which
/// only tests make in any volume.
std::vector<Runtime*>& retired_runtimes() {
  static std::vector<Runtime*>* list = new std::vector<Runtime*>;
  return *list;
}

void retire(Runtime* rt) {
  if (rt != nullptr) retired_runtimes().push_back(rt);
}

/// Parses AIGML_FAULTS once at startup.  A malformed spec disables injection
/// with a loud stderr warning instead of terminating static initialization.
struct EnvInstall {
  EnvInstall() {
    const char* spec = std::getenv("AIGML_FAULTS");
    if (spec == nullptr || spec[0] == '\0') return;
    try {
      install(FaultPlan::parse(spec));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "aigml: ignoring AIGML_FAULTS: %s\n", e.what());
    }
  }
} g_env_install;

std::uint64_t parse_u64_knob(const std::string& entry, const std::string& text) {
  std::size_t used = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(text, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("fault plan '" + entry + "': '" + text +
                                "' is not a non-negative integer");
  }
  if (used != text.size()) {
    throw std::invalid_argument("fault plan '" + entry + "': trailing garbage after '" + text +
                                "'");
  }
  return static_cast<std::uint64_t>(v);
}

double parse_prob_knob(const std::string& entry, const std::string& text) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(text, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("fault plan '" + entry + "': '" + text + "' is not a number");
  }
  if (used != text.size() || v < 0.0 || v > 1.0) {
    throw std::invalid_argument("fault plan '" + entry + "': prob must be in [0, 1]");
  }
  return v;
}

}  // namespace

const char* to_string(Site site) noexcept { return kSiteNames[static_cast<int>(site)]; }

std::optional<Site> site_from_name(std::string_view name) noexcept {
  for (int i = 0; i < kNumSites; ++i) {
    if (name == kSiteNames[i]) return static_cast<Site>(i);
  }
  return std::nullopt;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t end = std::min(spec.find(';', pos), spec.size());
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    if (entry.rfind("seed=", 0) == 0) {
      plan.seed_ = parse_u64_knob(entry, entry.substr(5));
      continue;
    }

    // site[,knob]*
    const std::size_t name_end = std::min(entry.find(','), entry.size());
    const std::string name = entry.substr(0, name_end);
    const std::optional<Site> site = site_from_name(name);
    if (!site.has_value()) {
      std::string known;
      for (int i = 0; i < kNumSites; ++i) known += std::string(i ? " " : "") + kSiteNames[i];
      throw std::invalid_argument("fault plan: unknown site '" + name + "' (known: " + known +
                                  ")");
    }
    SiteRule& rule = plan.rules_[static_cast<int>(*site)];
    rule.armed = true;
    std::size_t kpos = name_end;
    while (kpos < entry.size()) {
      const std::size_t kend = std::min(entry.find(',', kpos + 1), entry.size());
      const std::string knob = entry.substr(kpos + 1, kend - kpos - 1);
      kpos = kend;
      if (knob.empty()) continue;
      const std::size_t eq = knob.find('=');
      if (eq == std::string::npos) {
        throw std::invalid_argument("fault plan '" + entry + "': knob '" + knob +
                                    "' is not key=value");
      }
      const std::string key = knob.substr(0, eq);
      const std::string value = knob.substr(eq + 1);
      if (key == "after") {
        rule.after = parse_u64_knob(entry, value);
      } else if (key == "count") {
        rule.count = parse_u64_knob(entry, value);
      } else if (key == "every") {
        rule.every = std::max<std::uint64_t>(1, parse_u64_knob(entry, value));
      } else if (key == "prob") {
        rule.prob = parse_prob_knob(entry, value);
      } else if (key == "ms") {
        rule.delay_ms = static_cast<int>(parse_u64_knob(entry, value));
      } else {
        throw std::invalid_argument("fault plan '" + entry + "': unknown knob '" + key +
                                    "' (known: after count every prob ms)");
      }
    }
  }
  return plan;
}

bool FaultPlan::any_armed() const noexcept {
  for (const SiteRule& rule : rules_) {
    if (rule.armed) return true;
  }
  return false;
}

namespace detail {

std::atomic<bool> g_enabled{false};

bool fire_slow(Site site) noexcept {
  Runtime* rt = g_runtime.load(std::memory_order_acquire);
  if (rt == nullptr) return false;
  const FaultPlan::SiteRule& rule = rt->plan.rule(site);
  SiteState& state = rt->sites[static_cast<int>(site)];
  // Every visitor claims a unique 1-based visit index; eligibility is a pure
  // function of that index (and, with prob<1, of the per-site RNG stream).
  const std::uint64_t visit = state.visits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!rule.armed) return false;
  if (visit <= rule.after) return false;
  if ((visit - rule.after - 1) % rule.every != 0) return false;
  if (rule.count != 0 && state.fired.load(std::memory_order_relaxed) >= rule.count) return false;
  if (rule.prob < 1.0) {
    const std::lock_guard lock(state.rng_mutex);
    if (state.rng.next_double() >= rule.prob) return false;
  }
  // A racing pair of visitors may both pass the count check and overshoot by
  // one; count is a test-budget knob, not a hard invariant, and the fired()
  // accessor reports what actually happened.
  state.fired.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace detail

void install(const FaultPlan& plan) {
  const std::lock_guard lock(g_install_mutex);
  detail::g_enabled.store(false, std::memory_order_release);
  auto* rt = new Runtime;
  rt->plan = plan;
  std::uint64_t seed_state = plan.seed();
  for (int i = 0; i < kNumSites; ++i) {
    rt->sites[i].rng.reseed(splitmix64(seed_state));
  }
  retire(g_runtime.exchange(rt, std::memory_order_acq_rel));
  detail::g_enabled.store(plan.any_armed(), std::memory_order_release);
}

void clear() noexcept {
  const std::lock_guard lock(g_install_mutex);
  detail::g_enabled.store(false, std::memory_order_release);
  retire(g_runtime.exchange(nullptr, std::memory_order_acq_rel));
}

void throw_if(Site site, const char* what) {
  if (fire(site)) {
    throw std::runtime_error(std::string("fault injected: ") + to_string(site) + " (" + what +
                             ")");
  }
}

void maybe_delay(Site site) {
  if (!fire(site)) return;
  Runtime* rt = g_runtime.load(std::memory_order_acquire);
  const int ms = rt != nullptr ? rt->plan.rule(site).delay_ms : 0;
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::uint64_t fired(Site site) noexcept {
  Runtime* rt = g_runtime.load(std::memory_order_acquire);
  return rt == nullptr ? 0 : rt->sites[static_cast<int>(site)].fired.load(std::memory_order_relaxed);
}

std::uint64_t visits(Site site) noexcept {
  Runtime* rt = g_runtime.load(std::memory_order_acquire);
  return rt == nullptr ? 0
                       : rt->sites[static_cast<int>(site)].visits.load(std::memory_order_relaxed);
}

}  // namespace aigml::fault
