#pragma once
// Experiment scaling knobs, read once from the environment.
//
//   AIGML_SCALE         multiplies dataset sizes / iteration budgets in the
//                       bench harness (default 1.0; paper scale ~= 67).
//   AIGML_PAPER_HPARAMS when "1", model training uses the paper's XGBoost
//                       hyperparameters (5000 trees, depth 16, lr 0.01)
//                       instead of the repo-scale defaults.
//   AIGML_CACHE_DIR     directory for dataset caches (default "aigml_cache").

#include <string>

namespace aigml {

/// Returns the value of `AIGML_SCALE` clamped to [0.05, 1000]; 1.0 if unset
/// or unparseable.
[[nodiscard]] double env_scale();

/// Scales an integer budget by env_scale(), with a floor of `min_value`.
[[nodiscard]] int scaled(int base, int min_value = 1);

/// True when AIGML_PAPER_HPARAMS=1.
[[nodiscard]] bool env_paper_hparams();

/// Dataset cache directory (AIGML_CACHE_DIR or "aigml_cache").
[[nodiscard]] std::string env_cache_dir();

}  // namespace aigml
