#pragma once
// Deterministic fault injection (DESIGN.md §10).
//
// Production code is sprinkled with *named injection sites* — points where a
// socket can refuse, a write can tear, a worker can throw.  In a normal run
// every site is a no-op behind one relaxed atomic load (the plan pointer is
// null, the branch is never taken, nothing else is touched).  Under test —
// via the AIGML_FAULTS environment variable or fault::install() — a seeded
// FaultPlan decides, deterministically, which visits of which sites fire.
//
// Grammar (AIGML_FAULTS and FaultPlan::parse):
//
//   plan    := entry (';' entry)*
//   entry   := "seed=" N                     global seed for prob= draws
//            | site (',' knob)*
//   knob    := "after=" N    skip the first N visits of the site (default 0)
//            | "count=" N    fire at most N times (default 1; 0 = unlimited)
//            | "every=" N    of the eligible visits, fire every Nth (default 1)
//            | "prob=" P     fire each eligible visit with probability P,
//                            drawn from a per-site Rng seeded by (seed, site)
//            | "ms=" N       payload for delay sites (default 20)
//
//   sites: socket.connect  socket.read  socket.write  socket.partial-write
//          socket.delay    server.kill  model.truncate  worker.throw
//          replay.tear     retrain.throw  net.accept  net.epoll_spurious
//          net.slot_stall  spec.commit_abort
//
// Example: AIGML_FAULTS="socket.read,after=40,count=3;socket.delay,ms=50,count=0"
//
// Determinism: firing depends only on the per-site visit counter (and, with
// prob=, on a per-site RNG stream seeded from the plan seed) — never on wall
// time or thread scheduling.  Counters are atomic, so concurrent visitors
// each observe a unique visit index; a single-threaded call path replays
// identically for a fixed plan.
//
// The framework is test scaffolding with production-grade hygiene: sites
// stay compiled into release builds (the chaos CI job injects faults into
// the same binary it ships), and the disabled-path cost is one predictable
// branch on an atomic load.

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace aigml::fault {

enum class Site : int {
  kSocketConnect = 0,  ///< tcp_connect fails (connection refused)
  kSocketRead,         ///< Socket::recv_some fails (connection reset)
  kSocketWrite,        ///< Socket::send_all fails (broken pipe)
  kSocketPartialWrite, ///< send_all writes 1 byte per syscall (exercises the loop)
  kSocketDelay,        ///< sleep before a socket read (exercises deadlines)
  kServerKill,         ///< server drops the connection instead of replying
  kModelTruncate,      ///< GbdtModel::load sees a truncated file body
  kWorkerThrow,        ///< background worker task throws mid-item
  kReplayTear,         ///< ReplayBuffer::flush tears the final record
  kRetrainThrow,       ///< Retrainer throws after training, before install
  kNetAccept,          ///< BatchServer closes a just-accepted connection
  kNetEpollSpurious,   ///< EventLoop wakes with synthesized no-data events
  kNetSlotStall,       ///< a slot completion is delayed before delivery
  kSpecCommitAbort,    ///< speculative committer aborts a would-commit window
};
inline constexpr int kNumSites = 14;

[[nodiscard]] const char* to_string(Site site) noexcept;
[[nodiscard]] std::optional<Site> site_from_name(std::string_view name) noexcept;

/// One parsed plan: per-site arming knobs (grammar above).  Plans are
/// immutable once installed; state (visit counters, RNG streams) lives in
/// the process-wide runtime, reset by install()/clear().
class FaultPlan {
 public:
  struct SiteRule {
    bool armed = false;
    std::uint64_t after = 0;   ///< visits skipped before eligibility
    std::uint64_t count = 1;   ///< max fires (0 = unlimited)
    std::uint64_t every = 1;   ///< fire every Nth eligible visit
    double prob = 1.0;         ///< fire probability per eligible visit
    int delay_ms = 20;         ///< payload for delay sites
  };

  /// Parses the grammar above; throws std::invalid_argument naming the
  /// offending segment.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);

  [[nodiscard]] const SiteRule& rule(Site site) const noexcept {
    return rules_[static_cast<int>(site)];
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] bool any_armed() const noexcept;

 private:
  SiteRule rules_[kNumSites];
  std::uint64_t seed_ = 1;
};

namespace detail {
extern std::atomic<bool> g_enabled;
[[nodiscard]] bool fire_slow(Site site) noexcept;
}  // namespace detail

/// Installs `plan` process-wide and resets all site state.  Test hook; the
/// environment path (AIGML_FAULTS) installs automatically at startup.
void install(const FaultPlan& plan);
/// Removes any installed plan; every site returns to the no-op fast path.
void clear() noexcept;
/// True when a plan with at least one armed site is installed.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// The hot-path check: false immediately when no plan is installed.
/// Otherwise bumps the site's visit counter and applies its rule.
[[nodiscard]] inline bool fire(Site site) noexcept {
  return enabled() && detail::fire_slow(site);
}

/// fire() + throw std::runtime_error("fault injected: <site> (<what>)").
void throw_if(Site site, const char* what);
/// For delay sites: fire() and, when it fires, sleep the rule's ms payload.
void maybe_delay(Site site);

/// Times fire() returned true for `site` since the last install()/clear().
[[nodiscard]] std::uint64_t fired(Site site) noexcept;
/// Times `site` was visited (fire() called with a plan installed).
[[nodiscard]] std::uint64_t visits(Site site) noexcept;

}  // namespace aigml::fault
