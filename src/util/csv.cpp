#include "util/csv.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace aigml {

std::optional<std::size_t> CsvTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  return std::nullopt;
}

void CsvTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("CsvTable::add_row: row width " + std::to_string(row.size()) +
                                " != header width " + std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

double CsvTable::cell_as_double(std::size_t row, std::size_t col) const {
  const std::string& s = cell(row, col);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::invalid_argument("CsvTable: cell is not a number: '" + s + "'");
  }
  return value;
}

void CsvTable::save(const std::filesystem::path& path) const {
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path);
  if (!out) throw std::runtime_error("CsvTable::save: cannot open " + path.string());
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << row[i];
    }
    out << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, ',')) fields.push_back(field);
  if (!line.empty() && line.back() == ',') fields.emplace_back();
  return fields;
}

}  // namespace

std::optional<CsvTable> CsvTable::load(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  CsvTable table(split_csv_line(line));
  if (table.header().empty()) return std::nullopt;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    auto fields = split_csv_line(line);
    if (fields.size() != table.header().size()) return std::nullopt;
    table.rows_.push_back(std::move(fields));
  }
  return table;
}

std::string format_double(double value) {
  char buffer[64];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc{}) return "0";
  return std::string(buffer, ptr);
}

}  // namespace aigml
