#pragma once
// Descriptive statistics and correlation measures used throughout the
// evaluation harness (Pearson r for Fig. 1, %error summaries for Table III).

#include <cstddef>
#include <span>
#include <vector>

namespace aigml {

/// Streaming mean / variance / extrema accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  void add_all(std::span<const double> xs) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance (divide by n); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  /// Sample variance (divide by n-1); 0 for fewer than two samples.
  [[nodiscard]] double sample_variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double sample_stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Pearson product-moment correlation coefficient.  Returns 0 when either
/// series is constant or the series lengths differ / are < 2.
[[nodiscard]] double pearson(std::span<const double> xs, std::span<const double> ys) noexcept;

/// Spearman rank correlation (Pearson over fractional ranks, ties averaged).
[[nodiscard]] double spearman(std::span<const double> xs, std::span<const double> ys);

/// Linear-interpolated percentile, p in [0, 100].  Returns 0 on empty input.
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Mean of |a-b|/|b| in percent over paired spans ("absolute %error" as
/// defined in the paper's Table III, with `b` the ground truth).
struct ErrorSummary {
  double mean_pct = 0.0;
  double max_pct = 0.0;
  double std_pct = 0.0;  // population std of the absolute %errors
  std::size_t count = 0;
};
[[nodiscard]] ErrorSummary absolute_percent_error(std::span<const double> predicted,
                                                  std::span<const double> truth) noexcept;

}  // namespace aigml
