#pragma once
// Descriptive statistics and correlation measures used throughout the
// evaluation harness (Pearson r for Fig. 1, %error summaries for Table III).

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace aigml {

/// Streaming mean / variance / extrema accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  void add_all(std::span<const double> xs) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance (divide by n); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  /// Sample variance (divide by n-1); 0 for fewer than two samples.
  [[nodiscard]] double sample_variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double sample_stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Pearson product-moment correlation coefficient.  Returns 0 when either
/// series is constant or the series lengths differ / are < 2.
[[nodiscard]] double pearson(std::span<const double> xs, std::span<const double> ys) noexcept;

/// Spearman rank correlation (Pearson over fractional ranks, ties averaged).
[[nodiscard]] double spearman(std::span<const double> xs, std::span<const double> ys);

/// Linear-interpolated percentile, p in [0, 100].  Returns 0 on empty input.
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Fixed-bucket latency histogram (microseconds).  Buckets are cheap enough
/// to live on the serving hot path (one branchless scan per add), copyable
/// so ServiceStats snapshots stay value types, and mergeable so a load
/// generator can fold per-connection histograms into one report.
/// Percentiles are estimated by linear interpolation inside the bucket that
/// crosses the requested rank — exact enough for p50/p90/p99 tail reporting
/// (the last bucket interpolates toward the observed maximum).
class LatencyHistogram {
 public:
  /// Upper bounds (inclusive) of each bucket, in microseconds; the final
  /// bucket is unbounded.
  static constexpr std::array<double, 15> kBucketBoundsUs = {
      50,    100,    200,    500,    1000,    2000,    5000,   10000,
      20000, 50000,  100000, 200000, 500000,  1000000, 2000000};
  static constexpr std::size_t kNumBuckets = kBucketBoundsUs.size() + 1;

  void add_us(double us) noexcept;
  void merge(const LatencyHistogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean_us() const noexcept { return count_ ? sum_us_ / double(count_) : 0.0; }
  [[nodiscard]] double max_us() const noexcept { return max_us_; }
  /// Interpolated percentile, p in [0, 100].  0 on an empty histogram.
  [[nodiscard]] double percentile_us(double p) const noexcept;
  [[nodiscard]] const std::array<std::uint64_t, kNumBuckets>& buckets() const noexcept {
    return buckets_;
  }

 private:
  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_us_ = 0.0;
  double max_us_ = 0.0;
};

/// Mean of |a-b|/|b| in percent over paired spans ("absolute %error" as
/// defined in the paper's Table III, with `b` the ground truth).
struct ErrorSummary {
  double mean_pct = 0.0;
  double max_pct = 0.0;
  double std_pct = 0.0;  // population std of the absolute %errors
  std::size_t count = 0;
};
[[nodiscard]] ErrorSummary absolute_percent_error(std::span<const double> predicted,
                                                  std::span<const double> truth) noexcept;

}  // namespace aigml
