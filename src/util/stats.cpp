#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace aigml {

void RunningStats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

void RunningStats::add_all(std::span<const double> xs) noexcept {
  for (double x : xs) add(x);
}

double RunningStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::sample_variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }
double RunningStats::sample_stddev() const noexcept { return std::sqrt(sample_variance()); }

void LatencyHistogram::add_us(double us) noexcept {
  if (!(us >= 0.0)) us = 0.0;  // NaN / negative clock skew folds into bucket 0
  std::size_t b = 0;
  while (b < kBucketBoundsUs.size() && us > kBucketBoundsUs[b]) ++b;
  ++buckets_[b];
  ++count_;
  sum_us_ += us;
  if (us > max_us_) max_us_ = us;
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (std::size_t b = 0; b < kNumBuckets; ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  sum_us_ += other.sum_us_;
  if (other.max_us_ > max_us_) max_us_ = other.max_us_;
}

double LatencyHistogram::percentile_us(double p) const noexcept {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const double lower_rank = static_cast<double>(cumulative);
    cumulative += buckets_[b];
    if (static_cast<double>(cumulative) < rank) continue;
    const double lower = b == 0 ? 0.0 : kBucketBoundsUs[b - 1];
    const double upper = b < kBucketBoundsUs.size()
                             ? kBucketBoundsUs[b]
                             : std::max(max_us_, kBucketBoundsUs.back());
    const double fraction =
        std::clamp((rank - lower_rank) / static_cast<double>(buckets_[b]), 0.0, 1.0);
    return std::min(lower + fraction * (upper - lower), max_us_ > 0.0 ? max_us_ : upper);
  }
  return max_us_;
}

double pearson(std::span<const double> xs, std::span<const double> ys) noexcept {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const auto n = static_cast<double>(xs.size());
  const double mx = std::accumulate(xs.begin(), xs.end(), 0.0) / n;
  const double my = std::accumulate(ys.begin(), ys.end(), 0.0) / n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

std::vector<double> fractional_ranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Average rank for the tie group [i, j].
    const double rank = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double spearman(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const auto rx = fractional_ranks(xs);
  const auto ry = fractional_ranks(ys);
  return pearson(rx, ry);
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  p = std::clamp(p, 0.0, 100.0);
  const double pos = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

ErrorSummary absolute_percent_error(std::span<const double> predicted,
                                    std::span<const double> truth) noexcept {
  ErrorSummary out;
  if (predicted.size() != truth.size() || predicted.empty()) return out;
  RunningStats stats;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (truth[i] == 0.0) continue;  // undefined %error; skip degenerate labels
    stats.add(std::abs(predicted[i] - truth[i]) / std::abs(truth[i]) * 100.0);
  }
  out.mean_pct = stats.mean();
  out.max_pct = stats.max();
  out.std_pct = stats.stddev();
  out.count = stats.count();
  return out;
}

}  // namespace aigml
