#pragma once
// Wall-clock timing utilities used for all runtime tables (Fig. 2, Table IV).

#include <chrono>
#include <cstdint>

namespace aigml {

/// Monotonic stopwatch.  `elapsed_s()` may be called repeatedly; `restart()`
/// resets the origin.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_s() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  [[nodiscard]] double elapsed_ms() const noexcept { return elapsed_s() * 1e3; }
  [[nodiscard]] double elapsed_us() const noexcept { return elapsed_s() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across multiple disjoint intervals (e.g. "total seconds
/// spent in technology mapping across all SA iterations").
class Stopwatch {
 public:
  void start() noexcept {
    timer_.restart();
    running_ = true;
  }
  void stop() noexcept {
    if (running_) {
      total_s_ += timer_.elapsed_s();
      ++laps_;
      running_ = false;
    }
  }
  [[nodiscard]] double total_s() const noexcept { return total_s_; }
  [[nodiscard]] std::uint64_t laps() const noexcept { return laps_; }
  [[nodiscard]] double mean_s() const noexcept { return laps_ == 0 ? 0.0 : total_s_ / static_cast<double>(laps_); }
  void reset() noexcept {
    total_s_ = 0.0;
    laps_ = 0;
    running_ = false;
  }

 private:
  Timer timer_;
  double total_s_ = 0.0;
  std::uint64_t laps_ = 0;
  bool running_ = false;
};

/// RAII guard adding the scope duration to a Stopwatch.
class ScopedLap {
 public:
  explicit ScopedLap(Stopwatch& watch) noexcept : watch_(watch) { watch_.start(); }
  ~ScopedLap() { watch_.stop(); }
  ScopedLap(const ScopedLap&) = delete;
  ScopedLap& operator=(const ScopedLap&) = delete;

 private:
  Stopwatch& watch_;
};

}  // namespace aigml
