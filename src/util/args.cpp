#include "util/args.hpp"

#include <stdexcept>

namespace aigml {

ArgParser::ArgParser(std::string command) : command_(std::move(command)) {}

ArgParser& ArgParser::positional(const std::string& name, const std::string& help,
                                 bool required) {
  if (required && !positionals_.empty() && !positionals_.back().required) {
    throw std::logic_error(command_ + ": required positional '" + name +
                           "' declared after an optional one");
  }
  positionals_.push_back({name, help, required, "", false});
  return *this;
}

ArgParser& ArgParser::variadic(const std::string& name, const std::string& help) {
  has_variadic_ = true;
  variadic_name_ = name;
  variadic_help_ = help;
  return *this;
}

ArgParser& ArgParser::option(const std::string& name, const std::string& value_name,
                             const std::string& help, const std::string& default_value) {
  options_.push_back({name, value_name, help, default_value, false, false});
  return *this;
}

ArgParser& ArgParser::flag(const std::string& name, const std::string& help) {
  options_.push_back({name, "", help, "", true, false});
  return *this;
}

void ArgParser::fail(const std::string& why) const {
  throw std::runtime_error(command_ + ": " + why);
}

ArgParser::Option* ArgParser::find_option(const std::string& name) {
  for (auto& o : options_) {
    if (o.name == name) return &o;
  }
  return nullptr;
}

const ArgParser::Option* ArgParser::find_option(const std::string& name) const {
  for (const auto& o : options_) {
    if (o.name == name) return &o;
  }
  return nullptr;
}

const ArgParser::Positional* ArgParser::find_positional(const std::string& name) const {
  for (const auto& p : positionals_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

void ArgParser::parse(int argc, char** argv, int first) {
  std::size_t next_positional = 0;
  for (int i = first; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::size_t eq = token.find('=');
      const std::string name = token.substr(2, eq == std::string::npos ? eq : eq - 2);
      Option* opt = find_option(name);
      if (opt == nullptr) fail("unknown option --" + name);
      opt->set = true;
      if (opt->is_flag) {
        if (eq != std::string::npos) fail("--" + name + " takes no value");
        continue;
      }
      if (eq != std::string::npos) {
        opt->value = token.substr(eq + 1);
      } else {
        if (i + 1 >= argc) fail("--" + name + " requires a value");
        opt->value = argv[++i];
      }
      continue;
    }
    if (next_positional < positionals_.size()) {
      positionals_[next_positional].value = token;
      positionals_[next_positional].set = true;
      ++next_positional;
    } else if (has_variadic_) {
      rest_.push_back(token);
    } else {
      fail("unexpected argument '" + token + "'");
    }
  }
  for (const auto& p : positionals_) {
    if (p.required && !p.set) fail("missing required argument <" + p.name + ">");
  }
}

bool ArgParser::has(const std::string& name) const {
  if (const Option* opt = find_option(name)) return opt->set;
  if (const Positional* pos = find_positional(name)) return pos->set;
  return false;
}

const std::string& ArgParser::get(const std::string& name) const {
  if (const Option* opt = find_option(name)) return opt->value;
  if (const Positional* pos = find_positional(name)) {
    if (!pos->set) fail("missing argument <" + name + ">");
    return pos->value;
  }
  fail("internal: undeclared argument '" + name + "'");
}

int ArgParser::get_int(const std::string& name) const {
  const std::string& text = get(name);
  std::size_t used = 0;
  int value = 0;
  try {
    value = std::stoi(text, &used);
  } catch (const std::exception&) {
    fail(name + ": '" + text + "' is not an integer");
  }
  if (used != text.size()) fail(name + ": '" + text + "' is not an integer");
  return value;
}

double ArgParser::get_double(const std::string& name) const {
  const std::string& text = get(name);
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &used);
  } catch (const std::exception&) {
    fail(name + ": '" + text + "' is not a number");
  }
  if (used != text.size()) fail(name + ": '" + text + "' is not a number");
  return value;
}

std::uint16_t ArgParser::get_port(const std::string& name) const {
  const int port = get_int(name);
  if (port < 1 || port > 65535) {
    fail(name + ": port " + std::to_string(port) + " out of range 1..65535");
  }
  return static_cast<std::uint16_t>(port);
}

std::string ArgParser::usage_line() const {
  std::string line = command_;
  for (const auto& p : positionals_) {
    line += p.required ? " <" + p.name + ">" : " [" + p.name + "]";
  }
  if (has_variadic_) line += " [" + variadic_name_ + " ...]";
  for (const auto& o : options_) {
    line += o.is_flag ? " [--" + o.name + "]" : " [--" + o.name + " " + o.value_name + "]";
  }
  return line;
}

std::string ArgParser::options_help() const {
  std::string text;
  for (const auto& o : options_) {
    std::string head = "--" + o.name + (o.is_flag ? "" : " " + o.value_name);
    if (head.size() < 18) head.resize(18, ' ');
    text += "    " + head + " " + o.help;
    if (!o.is_flag && !o.value.empty() && !o.set) text += " (default: " + o.value + ")";
    text += "\n";
  }
  return text;
}

}  // namespace aigml
