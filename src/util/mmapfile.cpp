#include "util/mmapfile.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace aigml::util {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

MmapFile::MmapFile(const std::filesystem::path& path) : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw_errno("mmap open " + path.string());
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("mmap stat " + path.string());
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    throw std::runtime_error("mmap " + path.string() + ": not a regular file");
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) {
    // mmap rejects zero-length mappings; an empty file is a valid (if
    // useless) handle and the container validator rejects it with a real
    // message instead of errno noise.
    ::close(fd);
    return;
  }
  void* mapped = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping pins the inode; the descriptor is no longer needed either
  // way (POSIX: closing the fd does not unmap).
  ::close(fd);
  if (mapped == MAP_FAILED) {
    size_ = 0;
    throw_errno("mmap " + path.string());
  }
  data_ = static_cast<const std::byte*>(mapped);
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(const_cast<std::byte*>(data_), size_);
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      path_(std::move(other.path_)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(const_cast<std::byte*>(data_), size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    path_ = std::move(other.path_);
  }
  return *this;
}

}  // namespace aigml::util
