#include "util/fsio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace aigml::fsio {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

void fsync_path(const std::filesystem::path& path) {
  const bool is_dir = std::filesystem::is_directory(path);
  const int fd = ::open(path.c_str(), is_dir ? (O_RDONLY | O_DIRECTORY) : O_RDONLY);
  if (fd < 0) throw_errno("fsync open " + path.string());
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    // Some filesystems reject fsync on directories (EINVAL); the rename is
    // then as durable as that filesystem allows, which is not worth failing
    // the save over.
    if (err == EINVAL && is_dir) return;
    errno = err;
    throw_errno("fsync " + path.string());
  }
  ::close(fd);
}

void write_file_atomic(const std::filesystem::path& path, const std::string& bytes) {
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
  const std::filesystem::path tmp =
      path.string() + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("open " + tmp.string());
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      errno = err;
      throw_errno("write " + tmp.string());
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    errno = err;
    throw_errno("fsync " + tmp.string());
  }
  ::close(fd);
  try {
    rename_durable(tmp, path);
  } catch (...) {
    ::unlink(tmp.c_str());
    throw;
  }
}

void rename_durable(const std::filesystem::path& from, const std::filesystem::path& to) {
  std::error_code ec;
  std::filesystem::rename(from, to, ec);
  if (ec) {
    throw std::runtime_error("rename " + from.string() + " -> " + to.string() + ": " +
                             ec.message());
  }
  const std::filesystem::path parent =
      to.has_parent_path() ? to.parent_path() : std::filesystem::path(".");
  fsync_path(parent);
}

}  // namespace aigml::fsio
