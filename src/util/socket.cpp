#include "util/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "util/fault.hpp"

namespace aigml {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("socket: cannot parse IPv4 address '" + host + "'");
  }
  return addr;
}

/// Polls `fd` for `events` until ready or the deadline passes.  A null
/// deadline means block indefinitely.  Throws SocketTimeout on expiry and
/// runtime_error on poll failure; EINTR restarts the wait with the budget
/// that remains.
void wait_ready(int fd, short events, const Clock::time_point* deadline, const char* what) {
  while (true) {
    int wait_ms = -1;
    if (deadline != nullptr) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(*deadline - Clock::now());
      if (remaining.count() <= 0) {
        throw SocketTimeout(std::string(what) + ": timed out");
      }
      wait_ms = static_cast<int>(remaining.count());
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc > 0) return;  // ready, or an error condition the syscall will report
    if (rc == 0) throw SocketTimeout(std::string(what) + ": timed out");
    if (errno == EINTR) continue;
    throw_errno(std::string(what) + " poll");
  }
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      read_timeout_ms_(other.read_timeout_ms_),
      write_timeout_ms_(other.write_timeout_ms_) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    read_timeout_ms_ = other.read_timeout_ms_;
    write_timeout_ms_ = other.write_timeout_ms_;
  }
  return *this;
}

void Socket::send_all(std::string_view data) {
  fault::throw_if(fault::Site::kSocketWrite, "broken pipe");
  // Tearing the send into 1-byte syscalls exercises the partial-write loop
  // and the peer's reassembly without changing the bytes on the wire.
  const std::size_t chunk =
      fault::fire(fault::Site::kSocketPartialWrite) ? 1 : data.size();

  const bool bounded = write_timeout_ms_ > 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(bounded ? write_timeout_ms_ : 0);
  std::size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a vanished peer must surface as an exception on this
    // connection's handler, not a process-wide SIGPIPE.
    const std::size_t want = std::min(chunk, data.size() - sent);
    const ssize_t n = ::send(fd_, data.data() + sent, want, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
      throw_errno("socket send");
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      wait_ready(fd_, POLLOUT, bounded ? &deadline : nullptr, "socket send");
    }
  }
}

std::size_t Socket::recv_some(char* out, std::size_t max) {
  return recv_some(out, max, read_timeout_ms_);
}

std::size_t Socket::recv_some(char* out, std::size_t max, int timeout_ms) {
  fault::maybe_delay(fault::Site::kSocketDelay);
  fault::throw_if(fault::Site::kSocketRead, "connection reset by peer");

  const bool bounded = timeout_ms > 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(bounded ? timeout_ms : 0);
  while (true) {
    const ssize_t n = ::recv(fd_, out, max, MSG_DONTWAIT);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      wait_ready(fd_, POLLIN, bounded ? &deadline : nullptr, "socket recv");
      continue;
    }
    if (errno == EINTR) continue;
    throw_errno("socket recv");
  }
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::shutdown_read() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket tcp_connect(const std::string& host, std::uint16_t port, int timeout_ms) {
  fault::throw_if(fault::Site::kSocketConnect, "connection refused");

  const sockaddr_in addr = make_addr(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket create");
  Socket s(fd);
  const std::string where = host + ":" + std::to_string(port);

  if (timeout_ms > 0) {
    // Nonblocking connect + poll: connect() alone honors only the kernel's
    // SYN-retry schedule (minutes), far beyond any useful request deadline.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
      throw_errno("socket fcntl");
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      if (errno != EINPROGRESS) throw_errno("socket connect to " + where);
      const Clock::time_point deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
      wait_ready(fd, POLLOUT, &deadline, ("socket connect to " + where).c_str());
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
        throw_errno("socket getsockopt");
      }
      if (err != 0) {
        errno = err;
        throw_errno("socket connect to " + where);
      }
    }
    if (::fcntl(fd, F_SETFL, flags) < 0) throw_errno("socket fcntl");
  } else {
    while (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      if (errno == EINTR) continue;
      throw_errno("socket connect to " + where);
    }
  }

  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return s;
}

TcpListener::TcpListener(const std::string& host, std::uint16_t port) {
  const sockaddr_in addr = make_addr(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket create");
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("socket bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("socket listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("socket getsockname");
  }
  port_ = ntohs(bound.sin_port);
  fd_.store(fd, std::memory_order_release);
}

TcpListener::~TcpListener() { close(); }

Socket TcpListener::accept() {
  while (true) {
    const int listen_fd = fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) return Socket();
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    const int err = errno;
    // Only a deliberate concurrent close() ends the loop (EBADF/EINVAL on
    // the closed fd).  Everything else — a connection aborted while in the
    // backlog (ECONNABORTED), fd exhaustion (EMFILE/ENFILE), transient
    // resource pressure — must not kill a long-running server's accept
    // loop; retry, backing off briefly on resource errors to avoid a spin.
    if (fd_.load(std::memory_order_acquire) < 0 || err == EBADF || err == EINVAL) {
      return Socket();
    }
    if (err == EMFILE || err == ENFILE || err == ENOBUFS || err == ENOMEM) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

void TcpListener::close() noexcept {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // shutdown() wakes a thread blocked in accept(); close() alone does not
    // reliably do so on Linux.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

bool LineReader::read_line(std::string& line) {
  while (true) {
    const std::size_t nl = buffer_.find('\n', pos_);
    if (nl != std::string::npos) {
      line.assign(buffer_, pos_, nl - pos_);
      pos_ = nl + 1;
      if (pos_ == buffer_.size()) {
        buffer_.clear();
        pos_ = 0;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    if (eof_) {
      if (pos_ < buffer_.size()) {
        line.assign(buffer_, pos_, buffer_.size() - pos_);
        buffer_.clear();
        pos_ = 0;
        return true;
      }
      return false;
    }
    if (max_line_bytes_ > 0 && buffer_.size() - pos_ > max_line_bytes_) {
      throw std::length_error("socket line exceeds " + std::to_string(max_line_bytes_) +
                              " bytes");
    }
    char chunk[4096];
    // A partial line is already buffered once any bytes beyond pos_ exist;
    // only then does the mid-line deadline apply.  An idle connection
    // waiting for the first byte of the next line is governed by the
    // socket's own read deadline (unbounded on the server, so keepalive
    // clients can sit quietly between requests).
    const bool mid_line = pos_ < buffer_.size();
    const std::size_t n = (mid_line && mid_line_timeout_ms_ > 0)
                              ? socket_->recv_some(chunk, sizeof(chunk), mid_line_timeout_ms_)
                              : socket_->recv_some(chunk, sizeof(chunk));
    if (n == 0) {
      eof_ = true;
      continue;
    }
    if (pos_ > 0) {
      buffer_.erase(0, pos_);
      pos_ = 0;
    }
    buffer_.append(chunk, n);
  }
}

}  // namespace aigml
