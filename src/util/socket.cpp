#include "util/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

namespace aigml {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("socket: cannot parse IPv4 address '" + host + "'");
  }
  return addr;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Socket::send_all(std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a vanished peer must surface as an exception on this
    // connection's handler, not a process-wide SIGPIPE.
    const ssize_t n =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("socket send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::size_t Socket::recv_some(char* out, std::size_t max) {
  while (true) {
    const ssize_t n = ::recv(fd_, out, max, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    throw_errno("socket recv");
  }
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket tcp_connect(const std::string& host, std::uint16_t port) {
  const sockaddr_in addr = make_addr(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket create");
  Socket s(fd);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("socket connect to " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return s;
}

TcpListener::TcpListener(const std::string& host, std::uint16_t port) {
  const sockaddr_in addr = make_addr(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket create");
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("socket bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("socket listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("socket getsockname");
  }
  port_ = ntohs(bound.sin_port);
  fd_.store(fd, std::memory_order_release);
}

TcpListener::~TcpListener() { close(); }

Socket TcpListener::accept() {
  while (true) {
    const int listen_fd = fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) return Socket();
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    const int err = errno;
    // Only a deliberate concurrent close() ends the loop (EBADF/EINVAL on
    // the closed fd).  Everything else — a connection aborted while in the
    // backlog (ECONNABORTED), fd exhaustion (EMFILE/ENFILE), transient
    // resource pressure — must not kill a long-running server's accept
    // loop; retry, backing off briefly on resource errors to avoid a spin.
    if (fd_.load(std::memory_order_acquire) < 0 || err == EBADF || err == EINVAL) {
      return Socket();
    }
    if (err == EMFILE || err == ENFILE || err == ENOBUFS || err == ENOMEM) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

void TcpListener::close() noexcept {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // shutdown() wakes a thread blocked in accept(); close() alone does not
    // reliably do so on Linux.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

bool LineReader::read_line(std::string& line) {
  while (true) {
    const std::size_t nl = buffer_.find('\n', pos_);
    if (nl != std::string::npos) {
      line.assign(buffer_, pos_, nl - pos_);
      pos_ = nl + 1;
      if (pos_ == buffer_.size()) {
        buffer_.clear();
        pos_ = 0;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    if (eof_) {
      if (pos_ < buffer_.size()) {
        line.assign(buffer_, pos_, buffer_.size() - pos_);
        buffer_.clear();
        pos_ = 0;
        return true;
      }
      return false;
    }
    char chunk[4096];
    const std::size_t n = socket_->recv_some(chunk, sizeof(chunk));
    if (n == 0) {
      eof_ = true;
      continue;
    }
    if (pos_ > 0) {
      buffer_.erase(0, pos_);
      pos_ = 0;
    }
    buffer_.append(chunk, n);
  }
}

}  // namespace aigml
