#pragma once
// Minimal fixed-size thread pool with blocking parallel_for / parallel_map.
//
// Design constraints (see DESIGN.md §2):
// * No work stealing, no task graph — the library's parallel sections are
//   flat index ranges (label a batch of AIG variants, map a vector), and a
//   shared atomic cursor balances uneven task costs well enough.
// * Determinism lives one level up: callers draw any randomness *before*
//   submitting tasks (Rng::fork(task_id)) and commit results in index order,
//   so outputs are bit-identical for 1 thread and N threads.
// * parallel_for(1 thread) degenerates to a plain loop on the calling
//   thread — zero synchronization — which keeps the single-thread path as
//   fast as the pre-pool code.
//
// Thread-count resolution: explicit argument > AIGML_THREADS env var >
// std::thread::hardware_concurrency().

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace aigml {

/// Process-default worker count: the value set by set_default_threads() if
/// any, else AIGML_THREADS, else hardware_concurrency() (at least 1).
[[nodiscard]] int default_num_threads();

/// Overrides default_num_threads() (the CLI --threads flag); n <= 0 resets
/// to the environment/hardware default.
void set_default_threads(int n);

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means default_num_threads().  A pool
  /// of 1 spawns no threads at all.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int num_threads() const noexcept { return num_threads_; }

  /// Runs fn(i) for every i in [0, n), distributing indices over the pool
  /// (the calling thread participates).  Blocks until all tasks finish.
  /// The first exception thrown by any task is rethrown here; remaining
  /// indices are abandoned.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// parallel_for that collects fn(i) into a vector in index order (results
  /// are positioned deterministically regardless of execution order).
  template <typename T, typename Fn>
  [[nodiscard]] std::vector<T> parallel_map(std::size_t n, Fn&& fn) {
    // vector<bool> bit-packs: concurrent out[i] writes would race on shared
    // bytes.  Use parallel_map<char> and convert if you need flags.
    static_assert(!std::is_same_v<T, bool>, "parallel_map<bool> would data-race");
    std::vector<T> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  void worker_loop();
  void run_tasks();

  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_size_ = 0;
  std::atomic<std::size_t> next_index_{0};
  std::uint64_t epoch_ = 0;
  int participants_target_ = 0;   ///< workers wanted this job: min(workers, n-1)
  int participants_claimed_ = 0;  ///< workers that joined this job so far
  int busy_workers_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace aigml
