#pragma once
// Minimal CSV reading/writing for dataset caching and experiment logs.
// Values are written with enough precision to round-trip doubles; no quoting
// support is needed because all field names are identifier-like.

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

namespace aigml {

/// In-memory rectangular table with a header row.
class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(std::vector<std::string> header) : header_(std::move(header)) {}

  [[nodiscard]] const std::vector<std::string>& header() const noexcept { return header_; }
  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const noexcept { return header_.size(); }

  /// Index of a named column, if present.
  [[nodiscard]] std::optional<std::size_t> column(const std::string& name) const;

  void add_row(std::vector<std::string> row);
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }
  [[nodiscard]] const std::string& cell(std::size_t row, std::size_t col) const {
    return rows_.at(row).at(col);
  }
  [[nodiscard]] double cell_as_double(std::size_t row, std::size_t col) const;

  /// Writes the table to `path`, creating parent directories as needed.
  void save(const std::filesystem::path& path) const;

  /// Loads a table; returns std::nullopt if the file does not exist or is
  /// malformed (ragged rows, empty header).
  static std::optional<CsvTable> load(const std::filesystem::path& path);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double compactly but losslessly (shortest round-trip form).
[[nodiscard]] std::string format_double(double value);

}  // namespace aigml
