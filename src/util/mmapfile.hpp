#pragma once
// Read-only memory-mapped file (DESIGN.md §13).  The zero-copy substrate of
// the .gbdt2 model container: open + fstat + mmap(PROT_READ), then the file
// contents are addressable as plain bytes for the mapping's lifetime.
//
// Lifetime contract: the mapping stays valid until the MmapFile is
// destroyed, independent of what happens to the directory entry afterwards
// (rename-over and unlink keep the inode's pages alive — exactly what lets
// a ModelRegistry snapshot keep serving a hot-swapped model while a newer
// file already sits at the same path).  Holders that hand out views into
// the mapped bytes must keep the MmapFile alive alongside them; GbdtModel
// does this with a shared_ptr<const MmapFile> member next to its spans.

#include <cstddef>
#include <filesystem>

namespace aigml::util {

class MmapFile {
 public:
  /// Empty (unmapped) handle; data() == nullptr, size() == 0.
  MmapFile() = default;
  /// Maps `path` read-only.  Throws std::runtime_error with errno context
  /// when the file cannot be opened, stat'ed, or mapped.  A zero-length
  /// file maps to an empty (but valid) handle.
  explicit MmapFile(const std::filesystem::path& path);
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  [[nodiscard]] const std::byte* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] const std::filesystem::path& path() const noexcept { return path_; }

 private:
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  std::filesystem::path path_;
};

}  // namespace aigml::util
