#include "util/env.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace aigml {

double env_scale() {
  const char* raw = std::getenv("AIGML_SCALE");
  if (raw == nullptr) return 1.0;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw || !std::isfinite(value)) return 1.0;
  return std::clamp(value, 0.05, 1000.0);
}

int scaled(int base, int min_value) {
  const double value = std::round(static_cast<double>(base) * env_scale());
  return std::max(min_value, static_cast<int>(value));
}

bool env_paper_hparams() {
  const char* raw = std::getenv("AIGML_PAPER_HPARAMS");
  return raw != nullptr && std::string(raw) == "1";
}

std::string env_cache_dir() {
  const char* raw = std::getenv("AIGML_CACHE_DIR");
  return raw != nullptr ? std::string(raw) : std::string("aigml_cache");
}

}  // namespace aigml
