#include "util/parallel.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>

namespace aigml {

namespace {

std::atomic<int> g_default_threads{0};

int env_threads() {
  const char* raw = std::getenv("AIGML_THREADS");
  if (raw == nullptr) return 0;
  try {
    return std::stoi(raw);
  } catch (...) {
    return 0;
  }
}

}  // namespace

int default_num_threads() {
  const int forced = g_default_threads.load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  const int env = env_threads();
  if (env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void set_default_threads(int n) {
  g_default_threads.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(int num_threads) {
  num_threads_ = num_threads > 0 ? num_threads : default_num_threads();
  // The calling thread is worker 0; spawn only the extras.
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_tasks() {
  const std::function<void(std::size_t)>& fn = *job_;
  const std::size_t n = job_size_;
  for (;;) {
    const std::size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    try {
      fn(i);
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
      // Abandon remaining indices so the pool drains quickly.
      next_index_.store(n, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      // A worker joins a job only while unclaimed participant slots remain;
      // small jobs (n-1 < worker count) leave the surplus workers asleep.
      work_ready_.wait(lock, [&] {
        return stopping_ ||
               (epoch_ != seen_epoch && participants_claimed_ < participants_target_);
      });
      if (stopping_) return;
      seen_epoch = epoch_;
      ++participants_claimed_;
    }
    run_tasks();
    {
      std::lock_guard lock(mutex_);
      if (--busy_workers_ == 0) work_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Single-thread (or single-task) fast path: no synchronization at all.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const int target = static_cast<int>(std::min(workers_.size(), n - 1));
  {
    std::lock_guard lock(mutex_);
    job_ = &fn;
    job_size_ = n;
    next_index_.store(0, std::memory_order_relaxed);
    participants_target_ = target;
    participants_claimed_ = 0;
    busy_workers_ = target;
    first_error_ = nullptr;
    ++epoch_;
  }
  // Wake only as many workers as the job can use.  A worker not yet back in
  // wait() when its notify fires still joins: the wait predicate re-checks
  // epoch and claim availability on entry.
  for (int i = 0; i < target; ++i) work_ready_.notify_one();
  run_tasks();  // the calling thread participates
  std::unique_lock lock(mutex_);
  work_done_.wait(lock, [&] { return busy_workers_ == 0; });
  job_ = nullptr;
  if (first_error_) std::rethrow_exception(std::exchange(first_error_, nullptr));
}

}  // namespace aigml
