#pragma once
// Declarative argv parser for the aigml CLI subcommands.  Each command
// declares its positionals, options (--name VALUE or --name=VALUE), and
// boolean flags once; parsing then gives typed lookup with validation, and
// the same declarations render the usage text — so the flag list printed by
// `aigml` can never drift from what a command actually accepts.
//
// Errors (unknown option, missing value, missing required positional,
// malformed number) throw std::runtime_error with a message naming the
// command and the offending token; the CLI's top-level handler turns that
// into `aigml: <message>` and exit 1.

#include <cstdint>
#include <string>
#include <vector>

namespace aigml {

class ArgParser {
 public:
  explicit ArgParser(std::string command);

  /// Declares the next positional argument.  Optional positionals must
  /// follow required ones.
  ArgParser& positional(const std::string& name, const std::string& help, bool required = true);
  /// Declares a trailing variadic positional (zero or more values,
  /// collected after all declared positionals are filled).
  ArgParser& variadic(const std::string& name, const std::string& help);
  /// Declares a value-carrying option (`--name VALUE` / `--name=VALUE`).
  ArgParser& option(const std::string& name, const std::string& value_name,
                    const std::string& help, const std::string& default_value = "");
  /// Declares a boolean flag (`--name`).
  ArgParser& flag(const std::string& name, const std::string& help);

  /// Parses argv[first..argc).  Tokens starting with "--" must match a
  /// declared option/flag; everything else fills positionals in order.
  void parse(int argc, char** argv, int first = 2);

  /// True when the option/flag/positional was given explicitly.
  [[nodiscard]] bool has(const std::string& name) const;
  /// Value of an option (its default when unset) or positional.  Throws on
  /// an unset positional or undeclared name.
  [[nodiscard]] const std::string& get(const std::string& name) const;
  [[nodiscard]] int get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  /// Port in 1..65535 (a silent uint16 truncation would bind the wrong port).
  [[nodiscard]] std::uint16_t get_port(const std::string& name) const;
  /// Values collected by the variadic positional.
  [[nodiscard]] const std::vector<std::string>& rest() const noexcept { return rest_; }

  [[nodiscard]] const std::string& command() const noexcept { return command_; }
  /// One-line synopsis: "opt <in.aag> [script] [--recipe R] ...".
  [[nodiscard]] std::string usage_line() const;
  /// Indented per-option help lines ("" when the command has no options).
  [[nodiscard]] std::string options_help() const;

 private:
  struct Positional {
    std::string name, help;
    bool required = true;
    std::string value;
    bool set = false;
  };
  struct Option {
    std::string name, value_name, help, value;
    bool is_flag = false;
    bool set = false;
  };

  [[noreturn]] void fail(const std::string& why) const;
  [[nodiscard]] Option* find_option(const std::string& name);
  [[nodiscard]] const Option* find_option(const std::string& name) const;
  [[nodiscard]] const Positional* find_positional(const std::string& name) const;

  std::string command_;
  std::vector<Positional> positionals_;
  std::vector<Option> options_;
  std::string variadic_name_, variadic_help_;
  bool has_variadic_ = false;
  std::vector<std::string> rest_;
};

}  // namespace aigml
