#pragma once
// Minimal RAII wrappers over POSIX TCP sockets — the transport under the
// serving layer (serve/server, serve/client).  Deliberately tiny: blocking
// I/O only, IPv4 loopback-oriented, no TLS, no poll loop.  The serving
// protocol is newline-delimited text, so the only read primitive offered is
// a buffered line reader.
//
// Every failure surfaces as std::runtime_error carrying errno text; a
// cleanly closed peer surfaces as read_line() returning false.  Deadline
// expiry surfaces as SocketTimeout (a runtime_error subclass) so callers can
// distinguish "slow peer" from "broken peer" when they care.
//
// Deadlines are poll-based: each send_all/recv_some call gets a fresh
// deadline of now + timeout and polls for readiness with the remaining
// budget, so a trickling peer cannot stretch one call forever.  A timeout of
// 0 means block indefinitely (the historical behavior and the default).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace aigml {

/// Thrown when a socket operation exceeds its configured deadline.
struct SocketTimeout : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Movable owner of a connected socket fd.  send/recv raw bytes.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  /// Relinquishes ownership of the fd without closing it (the event-loop
  /// load generator connects blocking, then hands the fd to a Connection).
  [[nodiscard]] int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Per-call deadlines for subsequent send_all/recv_some calls.
  /// 0 (the default) blocks indefinitely.
  void set_read_timeout_ms(int ms) noexcept { read_timeout_ms_ = ms; }
  void set_write_timeout_ms(int ms) noexcept { write_timeout_ms_ = ms; }

  /// Writes the whole buffer (looping over partial writes and EINTR) within
  /// the write deadline.  Throws SocketTimeout on expiry.
  void send_all(std::string_view data);
  /// Reads at most `max` bytes; returns 0 on orderly peer shutdown.  Uses
  /// the socket's read deadline.
  [[nodiscard]] std::size_t recv_some(char* out, std::size_t max);
  /// As above with an explicit deadline for this call only: timeout_ms > 0
  /// bounds the wait, timeout_ms <= 0 blocks indefinitely.
  [[nodiscard]] std::size_t recv_some(char* out, std::size_t max, int timeout_ms);
  /// Disables further sends/receives without closing the fd (wakes peers).
  void shutdown_both() noexcept;
  /// Half-close: no more receives, sends still flow.  A reader blocked on
  /// this socket drains what is already buffered and then sees EOF — the
  /// primitive under PredictServer::drain().
  void shutdown_read() noexcept;
  void close() noexcept;

 private:
  int fd_ = -1;
  int read_timeout_ms_ = 0;
  int write_timeout_ms_ = 0;
};

/// Connects to host:port (numeric IPv4 dotted quad or "localhost").
/// timeout_ms > 0 bounds the connection attempt (nonblocking connect +
/// poll); 0 blocks indefinitely.  Throws SocketTimeout on expiry.
[[nodiscard]] Socket tcp_connect(const std::string& host, std::uint16_t port,
                                 int timeout_ms = 0);

/// Listening socket bound to host:port; port 0 picks an ephemeral port
/// (query the choice via port()).  close() may be called from a different
/// thread than the one blocked in accept() — that is the supported way to
/// stop an accept loop.
class TcpListener {
 public:
  TcpListener(const std::string& host, std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// Raw listening fd, for callers that accept() themselves (the event-loop
  /// server registers it non-blocking with its reactor).  -1 after close().
  [[nodiscard]] int fd() const noexcept { return fd_.load(std::memory_order_acquire); }
  /// Blocks for the next connection.  Returns an invalid Socket once
  /// close() has been called from another thread.
  [[nodiscard]] Socket accept();
  void close() noexcept;

 private:
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

/// Buffered newline-delimited reader over a Socket.  Lines are returned
/// without the trailing '\n' (a trailing '\r' is also stripped).
///
/// `max_line_bytes` bounds the buffered length of a single line (0 =
/// unbounded); exceeding it throws std::length_error — the server's OOM
/// guard against a client that streams bytes without ever sending '\n'.
///
/// `set_mid_line_timeout_ms` bounds the wait for *continuation* bytes once a
/// partial line has arrived (a slow-loris guard).  The wait for the first
/// byte of a line uses the socket's own read deadline, so an idle-but-honest
/// keepalive connection is unaffected.
class LineReader {
 public:
  explicit LineReader(Socket& socket, std::size_t max_line_bytes = 0)
      : socket_(&socket), max_line_bytes_(max_line_bytes) {}

  void set_mid_line_timeout_ms(int ms) noexcept { mid_line_timeout_ms_ = ms; }

  /// Reads the next line into `line`; false on end of stream.  A final
  /// unterminated line before EOF is returned as a line.
  [[nodiscard]] bool read_line(std::string& line);

 private:
  Socket* socket_;
  std::string buffer_;
  std::size_t pos_ = 0;
  std::size_t max_line_bytes_ = 0;
  int mid_line_timeout_ms_ = 0;
  bool eof_ = false;
};

}  // namespace aigml
