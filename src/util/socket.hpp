#pragma once
// Minimal RAII wrappers over POSIX TCP sockets — the transport under the
// serving layer (serve/server, serve/client).  Deliberately tiny: blocking
// I/O only, IPv4 loopback-oriented, no TLS, no poll loop.  The serving
// protocol is newline-delimited text, so the only read primitive offered is
// a buffered line reader.
//
// Every failure surfaces as std::runtime_error carrying errno text; a
// cleanly closed peer surfaces as read_line() returning false.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace aigml {

/// Movable owner of a connected socket fd.  send/recv raw bytes.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Writes the whole buffer (looping over partial writes).
  void send_all(std::string_view data);
  /// Reads at most `max` bytes; returns 0 on orderly peer shutdown.
  [[nodiscard]] std::size_t recv_some(char* out, std::size_t max);
  /// Disables further sends/receives without closing the fd (wakes peers).
  void shutdown_both() noexcept;
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Connects to host:port (numeric IPv4 dotted quad or "localhost").
[[nodiscard]] Socket tcp_connect(const std::string& host, std::uint16_t port);

/// Listening socket bound to host:port; port 0 picks an ephemeral port
/// (query the choice via port()).  close() may be called from a different
/// thread than the one blocked in accept() — that is the supported way to
/// stop an accept loop.
class TcpListener {
 public:
  TcpListener(const std::string& host, std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// Blocks for the next connection.  Returns an invalid Socket once
  /// close() has been called from another thread.
  [[nodiscard]] Socket accept();
  void close() noexcept;

 private:
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

/// Buffered newline-delimited reader over a Socket.  Lines are returned
/// without the trailing '\n' (a trailing '\r' is also stripped).
class LineReader {
 public:
  explicit LineReader(Socket& socket) : socket_(&socket) {}

  /// Reads the next line into `line`; false on end of stream.  A final
  /// unterminated line before EOF is returned as a line.
  [[nodiscard]] bool read_line(std::string& line);

 private:
  Socket* socket_;
  std::string buffer_;
  std::size_t pos_ = 0;
  bool eof_ = false;
};

}  // namespace aigml
