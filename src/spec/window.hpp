#pragma once
// Window partitioning and window surgery — the graph-side half of the
// speculative parallel move engine (DESIGN.md §12).
//
// A *window* is a set of AND nodes carved out of the AIG so that several
// transforms can be proposed concurrently, one per window, without touching
// each other's logic.  The partitioner keys windows off node levels: seeds
// are picked deepest-first (highest level — the timing-critical end the
// paper's oracle cares about) and grown through the transitive fanin, so
// each window is a TFI-bounded cone.  Windows are pairwise disjoint by
// construction.
//
// extract_window() lifts a window into a standalone sub-AIG (window inputs
// become PIs, window nodes visible outside become POs) that any registry
// script can optimize in isolation.  splice_window() grafts an optimized
// sub-AIG back, rebuilding the host graph in ascending id order so the
// untouched prefix keeps its ids (small dirty regions, cheap incremental
// evaluation) and pruning logic the optimized window no longer needs.  The
// splice also returns an old-var -> new-literal map so a committer can chase
// surviving nodes across several splices in one round (executor.hpp).
//
// Correctness does not depend on the partition: every splice preserves all
// primary-output functions because the optimized sub-AIG computes the same
// functions at its outputs (scripts are equivalence-preserving) and the
// splice substitutes those outputs literally.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "aig/aig.hpp"

namespace aigml::spec {

/// One window: a set of AND-node ids, ascending.  Windows produced by one
/// partition_windows() call are pairwise disjoint.
struct Window {
  std::vector<aig::NodeId> nodes;
};

struct WindowParams {
  /// Upper bound on the number of windows returned (>= 1).
  int max_windows = 4;
  /// Per-window AND-node cap; 0 derives max(kMinWindowNodes, ands / windows)
  /// so the requested window count roughly tiles the graph.
  std::size_t max_window_nodes = 0;
};

inline constexpr std::size_t kMinWindowNodes = 8;

/// Carves `g` into up to `params.max_windows` disjoint AND-node windows.
/// `levels` must be aig::levels(g) (or AnalysisCache::levels() for the same
/// graph).  Deterministic: depends only on the graph and the parameters.
/// Invariants (fuzz-enforced by tests/test_spec.cpp):
///   * every listed id is an AND node of `g`,
///   * windows are pairwise disjoint,
///   * each window has between 1 and the effective node cap members,
///   * node lists are ascending.
[[nodiscard]] std::vector<Window> partition_windows(const aig::Aig& g,
                                                    const std::vector<std::uint32_t>& levels,
                                                    const WindowParams& params);

/// A window lifted into a standalone sub-AIG.
struct WindowCut {
  std::vector<aig::NodeId> nodes;        ///< the window, ascending
  std::vector<aig::NodeId> input_vars;   ///< outside vars feeding the window, ascending
  std::vector<aig::NodeId> output_nodes; ///< window nodes referenced outside (or by POs), ascending
  /// input_vars[k] -> sub PI k, output_nodes[j] -> sub PO j.  Output phases
  /// fold into the PO literals, so any equivalence-preserving rewrite of
  /// `sub` substitutes soundly.
  aig::Aig sub;
};

[[nodiscard]] WindowCut extract_window(const aig::Aig& g, const Window& w);

struct SpliceResult {
  aig::Aig graph;
  /// Original var -> literal in `graph` computing the same function;
  /// kLitInvalid for vars the splice pruned (window internals, logic dead
  /// after the rewrite).  Inputs and the constant always survive.
  std::vector<aig::Lit> node_map;
};

/// Grafts `optimized_sub` (same PI/PO arity as `cut.sub`, equivalent PO
/// functions) into `g` in place of the window.  The result is functionally
/// equivalent to `g` on all primary outputs; nodes outside the window keep
/// their relative order (ids shift only past the first structural change).
/// Logic that fed only window inputs the rewrite dropped is pruned — the
/// splice doubles as an incremental cleanup().
[[nodiscard]] SpliceResult splice_window(const aig::Aig& g, const WindowCut& cut,
                                         const aig::Aig& optimized_sub);

}  // namespace aigml::spec
