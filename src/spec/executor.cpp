#include "spec/executor.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "aig/analysis.hpp"
#include "aig/dirty.hpp"
#include "spec/conflict.hpp"
#include "spec/window.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace aigml::spec {

namespace {

/// One window's speculative result, filled by the (possibly parallel)
/// PROPOSE phase and consumed by the serial DECIDE phase.  Everything in
/// here is a pure function of (round base graph, window, forked RNG), so
/// slots are thread-count independent.
struct Proposal {
  std::size_t script = 0;
  aig::Aig candidate;               ///< round base with this window rewritten
  std::vector<aig::Lit> node_map;   ///< base var -> candidate lit (splice map)
  aig::DirtyRegion dirty;           ///< candidate vs round base
  opt::QualityEval q;
  double cost = 0.0;
  double transform_seconds = 0.0;
  double eval_seconds = 0.0;
  bool accepted = false;            ///< the accept rule's verdict (pre-commit)
};

/// Chases `window` (ids in the round base) through the composed splice map
/// into the current graph: surviving AND nodes, deduplicated, ascending.
std::vector<aig::NodeId> remap_window(const std::vector<aig::NodeId>& window,
                                      const std::vector<aig::Lit>& round_map,
                                      const aig::Aig& current) {
  std::vector<aig::NodeId> remapped;
  remapped.reserve(window.size());
  for (const aig::NodeId v : window) {
    const aig::Lit l = round_map[v];
    if (l == aig::kLitInvalid) continue;
    const aig::NodeId nv = aig::lit_var(l);
    if (!current.is_and(nv)) continue;
    remapped.push_back(nv);
  }
  std::sort(remapped.begin(), remapped.end());
  remapped.erase(std::unique(remapped.begin(), remapped.end()), remapped.end());
  return remapped;
}

}  // namespace

opt::OptResult speculative_loop(const aig::Aig& initial, opt::CostEvaluator& evaluator,
                                const opt::StopCondition& stop, opt::Observer* observer,
                                const transforms::ScriptRegistry& registry, double weight_delay,
                                double weight_area, std::uint64_t seed, const SpecParams& params,
                                const std::function<bool(double, double, Rng&)>& accept,
                                const std::function<void()>& post_iteration) {
  if (params.windows < 1) throw std::invalid_argument("speculative_loop: windows < 1");
  if (!evaluator.supports_speculation()) {
    throw std::invalid_argument("speculative search (windows=N) needs a forkable cost evaluator; '" +
                                evaluator.name() + "' does not support speculation (use windows=0)");
  }
  Timer total_timer;
  const Rng rng(seed);
  const bool main_inc = params.use_incremental && evaluator.supports_incremental();

  // Run-local accounting snapshots (strategy.hpp contract).  Workers are
  // minted fresh below, so their clocks are already run-local.
  const double main_seconds_before = evaluator.eval_seconds();
  const std::uint64_t main_count_before = evaluator.eval_count();
  const std::uint64_t main_degraded_before = evaluator.degraded_evals();

  std::vector<std::unique_ptr<opt::CostEvaluator>> workers;
  workers.reserve(static_cast<std::size_t>(params.windows));
  for (int i = 0; i < params.windows; ++i) workers.push_back(evaluator.fork_worker());
  const bool worker_inc = params.use_incremental && workers.front()->supports_incremental();

  const auto evals_used = [&] {
    std::uint64_t used = evaluator.eval_count() - main_count_before;
    for (const auto& w : workers) used += w->eval_count();
    return used;
  };

  opt::OptResult result;
  result.spec.windows = params.windows;
  result.spec.parallel = params.parallel;
  result.initial_eval = main_inc ? evaluator.bind(initial) : evaluator.evaluate(initial);
  const double delay0 = result.initial_eval.delay > 0 ? result.initial_eval.delay : 1.0;
  const double area0 = result.initial_eval.area > 0 ? result.initial_eval.area : 1.0;
  const auto cost_of = [&](const opt::QualityEval& q) {
    return weight_delay * q.delay / delay0 + weight_area * q.area / area0;
  };

  aig::Aig current = initial;
  double current_cost = cost_of(result.initial_eval);
  result.initial_cost = current_cost;
  result.best = initial;
  result.best_eval = result.initial_eval;
  result.best_cost = current_cost;
  if (observer != nullptr) observer->on_start(initial, result.initial_eval, current_cost);
  if (stop.max_iterations > 0) {
    result.history.reserve(static_cast<std::size_t>(stop.max_iterations));
  }
  for (auto& w : workers) {
    if (worker_inc) (void)w->bind(initial);
  }

  // A pool of 1 spawns no threads and parallel_for degenerates to a plain
  // loop, so serial (par=0) and parallel share one code path — which is how
  // the bit-identity contract stays honest by construction.
  ThreadPool pool(params.parallel ? params.threads : 1);

  int iter = 0;  // proposal counter == history length
  for (;;) {
    if (stop.max_iterations > 0 && iter >= stop.max_iterations) {
      result.stop_reason = opt::StopReason::kIterations;
      break;
    }
    if (stop.max_seconds > 0.0 && total_timer.elapsed_s() >= stop.max_seconds) {
      result.stop_reason = opt::StopReason::kWallTime;
      break;
    }
    if (stop.max_evals > 0 && evals_used() >= stop.max_evals) {
      result.stop_reason = opt::StopReason::kEvalBudget;
      break;
    }

    // --- PARTITION -----------------------------------------------------------
    WindowParams wp;
    wp.max_windows = params.windows;
    wp.max_window_nodes = params.max_window_nodes;
    std::vector<Window> wins = partition_windows(current, aig::levels(current), wp);
    if (wins.empty()) {
      // Nothing left to rewrite (constant/PI-only graph).
      result.stop_reason = opt::StopReason::kIterations;
      break;
    }
    if (stop.max_iterations > 0) {
      const auto remaining = static_cast<std::size_t>(stop.max_iterations - iter);
      if (wins.size() > remaining) wins.resize(remaining);
    }

    // --- PROPOSE -------------------------------------------------------------
    // Per-window RNG streams forked from (master state, round, window) before
    // submission; the master never advances, so streams are scheduling- and
    // thread-count-independent.
    const Rng round_rng = rng.fork(result.spec.rounds);
    const aig::Aig round_base = current;
    std::vector<Proposal> props(wins.size());
    pool.parallel_for(wins.size(), [&](std::size_t i) {
      Proposal& p = props[i];
      Rng wrng = round_rng.fork(i);
      p.script = registry.random_index(wrng);
      Timer transform_timer;
      const WindowCut cut = extract_window(round_base, wins[i]);
      const aig::Aig optimized = registry.apply(p.script, cut.sub);
      SpliceResult spliced = splice_window(round_base, cut, optimized);
      p.candidate = std::move(spliced.graph);
      p.node_map = std::move(spliced.node_map);
      p.dirty = aig::diff_region(round_base, p.candidate);
      p.transform_seconds = transform_timer.elapsed_s();

      opt::CostEvaluator& w = *workers[i];
      const double eval_before = w.eval_seconds();
      if (worker_inc) {
        p.q = w.evaluate_delta(p.candidate, p.dirty);
        w.rollback_move();  // stay bound to the round base; commits reconcile below
      } else {
        p.q = w.evaluate(p.candidate);
      }
      p.eval_seconds = w.eval_seconds() - eval_before;
      p.cost = cost_of(p.q);
      p.accepted = accept(p.cost, current_cost, wrng);
    });

    // --- DECIDE (serial, ascending window order) -----------------------------
    std::vector<const aig::DirtyRegion*> committed_regions;
    std::vector<aig::Lit> round_map;  // round base var -> current lit
    for (std::size_t i = 0; i < props.size(); ++i, ++iter) {
      Proposal& p = props[i];
      ++result.spec.proposed;
      if (observer != nullptr) observer->on_candidate(iter, p.candidate, p.q);

      bool commit = p.accepted;
      if (commit) {
        for (const aig::DirtyRegion* r : committed_regions) {
          if (regions_overlap(p.dirty, *r)) {
            commit = false;
            break;
          }
        }
        if (commit && fault::fire(fault::Site::kSpecCommitAbort)) commit = false;
        if (commit) {
          if (committed_regions.empty()) {
            current = std::move(p.candidate);
            round_map = std::move(p.node_map);
          } else {
            // Later winner: re-apply its script to the window chased through
            // the splices already committed this round.  Equivalence holds
            // unconditionally (window surgery preserves PO functions); the
            // speculated cost is trued up at round end.
            Timer reapply_timer;
            const std::vector<aig::NodeId> remapped =
                remap_window(wins[i].nodes, round_map, current);
            if (remapped.empty()) {
              commit = false;
            } else {
              const WindowCut cut = extract_window(current, Window{remapped});
              const aig::Aig optimized = registry.apply(p.script, cut.sub);
              SpliceResult spliced = splice_window(current, cut, optimized);
              current = std::move(spliced.graph);
              for (aig::Lit& l : round_map) {
                if (l == aig::kLitInvalid) continue;
                const aig::Lit t = spliced.node_map[aig::lit_var(l)];
                l = t == aig::kLitInvalid ? aig::kLitInvalid
                                          : aig::lit_not_if(t, aig::lit_is_complemented(l));
              }
            }
            p.transform_seconds += reapply_timer.elapsed_s();
          }
        }
        if (commit) {
          committed_regions.push_back(&p.dirty);
          ++result.spec.committed;
        } else {
          ++result.spec.aborted;
        }
      }

      opt::IterationRecord record;
      record.script_index = p.script;
      record.delay = p.q.delay;
      record.area = p.q.area;
      record.cost = p.cost;
      record.accepted = commit;
      record.transform_seconds = p.transform_seconds;
      record.eval_seconds = p.eval_seconds;
      post_iteration();
      result.total_transform_seconds += record.transform_seconds;
      result.history.push_back(record);
      if (observer != nullptr) observer->on_iteration(iter, result.history.back());
    }
    ++result.spec.rounds;

    // --- RECONCILE -----------------------------------------------------------
    if (!committed_regions.empty()) {
      const aig::DirtyRegion round_dirty = aig::diff_region(round_base, current);
      opt::QualityEval q;
      if (main_inc) {
        q = evaluator.evaluate_delta(current, round_dirty);
        evaluator.commit_move();
      } else {
        q = evaluator.evaluate(current);
      }
      current_cost = cost_of(q);
      if (current_cost < result.best_cost) {
        result.best = current;
        result.best_eval = q;
        result.best_cost = current_cost;
        if (observer != nullptr) observer->on_improvement(iter - 1, q, current_cost);
      }
      if (worker_inc) {
        pool.parallel_for(workers.size(), [&](std::size_t wi) {
          workers[wi]->evaluate_delta(current, round_dirty);
          workers[wi]->commit_move();
        });
      }
    }
  }

  result.total_eval_seconds = evaluator.eval_seconds() - main_seconds_before;
  result.eval_count = evaluator.eval_count() - main_count_before;
  result.degraded_evals = evaluator.degraded_evals() - main_degraded_before;
  for (const auto& w : workers) {
    result.total_eval_seconds += w->eval_seconds();
    result.eval_count += w->eval_count();
    result.degraded_evals += w->degraded_evals();
  }
  result.total_seconds = total_timer.elapsed_s();
  if (observer != nullptr) observer->on_finish(result);
  return result;
}

}  // namespace aigml::spec
