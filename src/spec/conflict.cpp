#include "spec/conflict.hpp"

#include <algorithm>

namespace aigml::spec {

namespace {

struct TailRange {
  std::size_t lo = 0;
  std::size_t hi = 0;  ///< half-open; lo == hi means no tail
};

TailRange tail_of(const aig::DirtyRegion& r) {
  return {std::min(r.before_num_nodes, r.after_num_nodes),
          std::max(r.before_num_nodes, r.after_num_nodes)};
}

bool in_tail(const TailRange& t, std::size_t id) { return id >= t.lo && id < t.hi; }

}  // namespace

bool regions_overlap(const aig::DirtyRegion& a, const aig::DirtyRegion& b) {
  if (a.empty() || b.empty()) return false;
  if (a.full || b.full) return true;
  if (a.outputs_changed && b.outputs_changed) return true;

  const TailRange ta = tail_of(a);
  const TailRange tb = tail_of(b);
  if (ta.lo < ta.hi && tb.lo < tb.hi && ta.lo < tb.hi && tb.lo < ta.hi) return true;

  // changed lists are ascending: one linear merge, plus each list checked
  // against the other's tail range.
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.changed.size() && j < b.changed.size()) {
    if (a.changed[i] == b.changed[j]) return true;
    if (a.changed[i] < b.changed[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  for (const aig::NodeId id : a.changed) {
    if (in_tail(tb, id)) return true;
  }
  for (const aig::NodeId id : b.changed) {
    if (in_tail(ta, id)) return true;
  }
  return false;
}

}  // namespace aigml::spec
