#include "spec/window.hpp"

#include <algorithm>
#include <stdexcept>

namespace aigml::spec {

namespace {

std::size_t effective_cap(const aig::Aig& g, const WindowParams& params) {
  if (params.max_window_nodes > 0) return params.max_window_nodes;
  const std::size_t windows = params.max_windows > 0 ? static_cast<std::size_t>(params.max_windows) : 1;
  return std::max(kMinWindowNodes, g.num_ands() / windows);
}

}  // namespace

std::vector<Window> partition_windows(const aig::Aig& g, const std::vector<std::uint32_t>& levels,
                                      const WindowParams& params) {
  if (params.max_windows < 1) throw std::invalid_argument("partition_windows: max_windows < 1");
  if (levels.size() != g.num_nodes()) {
    throw std::invalid_argument("partition_windows: levels/graph size mismatch");
  }
  const std::size_t n = g.num_nodes();
  const std::size_t cap = effective_cap(g, params);

  // Seeds: every AND node, deepest level first (the timing-critical end), id
  // as a deterministic tiebreak.  Growth claims the seed's transitive fanin
  // breadth-first, so a window is a TFI-bounded cone around its seed.
  std::vector<aig::NodeId> seeds;
  seeds.reserve(g.num_ands());
  for (aig::NodeId id = 0; id < n; ++id) {
    if (g.is_and(id)) seeds.push_back(id);
  }
  std::sort(seeds.begin(), seeds.end(), [&](aig::NodeId a, aig::NodeId b) {
    if (levels[a] != levels[b]) return levels[a] > levels[b];
    return a > b;
  });

  std::vector<char> claimed(n, 0);
  std::vector<Window> windows;
  std::vector<aig::NodeId> queue;
  for (const aig::NodeId seed : seeds) {
    if (claimed[seed] != 0) continue;
    if (windows.size() >= static_cast<std::size_t>(params.max_windows)) break;
    Window w;
    queue.clear();
    queue.push_back(seed);
    claimed[seed] = 1;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const aig::NodeId id = queue[head];
      w.nodes.push_back(id);
      // queue.size() counts every node this window has claimed (emitted plus
      // pending), so guarding each push individually enforces the cap exactly.
      for (const aig::Lit fanin : {g.fanin0(id), g.fanin1(id)}) {
        if (queue.size() >= cap) break;
        const aig::NodeId v = aig::lit_var(fanin);
        if (!g.is_and(v) || claimed[v] != 0) continue;
        claimed[v] = 1;
        queue.push_back(v);
      }
    }
    std::sort(w.nodes.begin(), w.nodes.end());
    windows.push_back(std::move(w));
  }
  return windows;
}

WindowCut extract_window(const aig::Aig& g, const Window& w) {
  const std::size_t n = g.num_nodes();
  WindowCut cut;
  cut.nodes = w.nodes;
  if (cut.nodes.empty()) throw std::invalid_argument("extract_window: empty window");

  std::vector<char> in_win(n, 0);
  for (const aig::NodeId id : cut.nodes) {
    if (id >= n || !g.is_and(id)) throw std::invalid_argument("extract_window: non-AND window node");
    in_win[id] = 1;
  }

  // Window inputs: outside non-constant vars any window node reads.
  for (const aig::NodeId id : cut.nodes) {
    for (const aig::Lit fanin : {g.fanin0(id), g.fanin1(id)}) {
      const aig::NodeId v = aig::lit_var(fanin);
      if (in_win[v] != 0 || g.is_constant(v)) continue;
      cut.input_vars.push_back(v);
    }
  }
  std::sort(cut.input_vars.begin(), cut.input_vars.end());
  cut.input_vars.erase(std::unique(cut.input_vars.begin(), cut.input_vars.end()),
                       cut.input_vars.end());

  // Window outputs: window nodes referenced by outside ANDs or by POs.
  std::vector<char> visible(n, 0);
  for (aig::NodeId id = 0; id < n; ++id) {
    if (!g.is_and(id) || in_win[id] != 0) continue;
    visible[aig::lit_var(g.fanin0(id))] = 1;
    visible[aig::lit_var(g.fanin1(id))] = 1;
  }
  for (const aig::Lit out : g.outputs()) visible[aig::lit_var(out)] = 1;
  for (const aig::NodeId id : cut.nodes) {
    if (visible[id] != 0) cut.output_nodes.push_back(id);
  }

  // Lift: inputs -> PIs in input_vars order, window ANDs rebuilt ascending
  // (fanins are either earlier window nodes or declared inputs), outputs ->
  // POs in output_nodes order with the original phases folded in.
  std::vector<aig::Lit> to_sub(n, aig::kLitInvalid);
  to_sub[0] = aig::kLitFalse;
  for (const aig::NodeId v : cut.input_vars) to_sub[v] = cut.sub.add_input();
  const auto map_lit = [&](aig::Lit l) {
    const aig::Lit mapped = to_sub[aig::lit_var(l)];
    if (mapped == aig::kLitInvalid) {
      throw std::logic_error("extract_window: window fanin neither input nor window node");
    }
    return aig::lit_not_if(mapped, aig::lit_is_complemented(l));
  };
  for (const aig::NodeId id : cut.nodes) {
    to_sub[id] = cut.sub.make_and(map_lit(g.fanin0(id)), map_lit(g.fanin1(id)));
  }
  for (const aig::NodeId id : cut.output_nodes) cut.sub.add_output(to_sub[id]);
  return cut;
}

namespace {

/// Marks which host nodes (`need_g`) and optimized-sub nodes (`need_sub`)
/// the spliced graph actually uses, by walking the combined dependency graph
/// backward from the host's primary outputs.  References into the window
/// detour through the optimized sub's corresponding output cone, and sub
/// inputs detour back to their original vars — so host logic that only fed
/// window inputs the rewrite dropped is never marked (the splice's built-in
/// cleanup).
void mark_needed(const aig::Aig& g, const std::vector<char>& in_win,
                 const std::vector<int>& out_index, const aig::Aig& optimized,
                 const std::vector<aig::NodeId>& sub_input_orig, std::vector<char>& need_g,
                 std::vector<char>& need_sub) {
  struct Ref {
    aig::NodeId var;
    bool sub;
  };
  std::vector<Ref> work;
  const auto push_g = [&](aig::NodeId v) {
    if (need_g[v] == 0) {
      need_g[v] = 1;
      work.push_back({v, false});
    }
  };
  const auto push_sub = [&](aig::NodeId v) {
    if (need_sub[v] == 0) {
      need_sub[v] = 1;
      work.push_back({v, true});
    }
  };
  for (const aig::Lit out : g.outputs()) push_g(aig::lit_var(out));
  while (!work.empty()) {
    const Ref ref = work.back();
    work.pop_back();
    if (ref.sub) {
      if (optimized.is_and(ref.var)) {
        push_sub(aig::lit_var(optimized.fanin0(ref.var)));
        push_sub(aig::lit_var(optimized.fanin1(ref.var)));
      } else if (optimized.is_input(ref.var)) {
        push_g(sub_input_orig[ref.var]);
      }
      continue;
    }
    if (in_win[ref.var] != 0) {
      const int j = out_index[ref.var];
      if (j < 0) throw std::logic_error("splice_window: window-internal node referenced outside");
      push_sub(aig::lit_var(optimized.outputs()[static_cast<std::size_t>(j)]));
    } else if (g.is_and(ref.var)) {
      push_g(aig::lit_var(g.fanin0(ref.var)));
      push_g(aig::lit_var(g.fanin1(ref.var)));
    }
  }
}

}  // namespace

SpliceResult splice_window(const aig::Aig& g, const WindowCut& cut, const aig::Aig& optimized_sub) {
  if (optimized_sub.num_inputs() != cut.sub.num_inputs() ||
      optimized_sub.num_outputs() != cut.sub.num_outputs()) {
    throw std::invalid_argument("splice_window: optimized sub i/o arity mismatch");
  }
  const std::size_t n = g.num_nodes();
  std::vector<char> in_win(n, 0);
  for (const aig::NodeId id : cut.nodes) in_win[id] = 1;
  std::vector<int> out_index(n, -1);
  for (std::size_t j = 0; j < cut.output_nodes.size(); ++j) {
    out_index[cut.output_nodes[j]] = static_cast<int>(j);
  }
  std::vector<aig::NodeId> sub_input_orig(optimized_sub.num_nodes(), 0);
  for (std::size_t k = 0; k < optimized_sub.inputs().size(); ++k) {
    sub_input_orig[optimized_sub.inputs()[k]] = cut.input_vars[k];
  }

  std::vector<char> need_g(n, 0);
  std::vector<char> need_sub(optimized_sub.num_nodes(), 0);
  mark_needed(g, in_win, out_index, optimized_sub, sub_input_orig, need_g, need_sub);

  SpliceResult res;
  aig::Aig& out = res.graph;
  res.node_map.assign(n, aig::kLitInvalid);
  res.node_map[0] = aig::kLitFalse;
  std::vector<aig::Lit> sub_map(optimized_sub.num_nodes(), aig::kLitInvalid);
  sub_map[0] = aig::kLitFalse;
  // All PIs survive (AIG i/o arity is part of the design's identity).
  for (std::size_t i = 0; i < g.inputs().size(); ++i) {
    res.node_map[g.inputs()[i]] = out.add_input(g.input_name(i));
  }

  // Two-space iterative resolver: emits host nodes in ascending id order and
  // pulls optimized-sub cones (and any host logic they demand early) on
  // first use.  Explicit stack — cone depth is graph depth, which recursion
  // could blow on deep arithmetic circuits.
  struct Frame {
    aig::NodeId var;
    bool sub;
  };
  std::vector<Frame> stack;
  const auto resolve = [&](aig::NodeId root) {
    if (res.node_map[root] != aig::kLitInvalid) return;
    stack.push_back({root, false});
    while (!stack.empty()) {
      const Frame f = stack.back();
      aig::Lit& slot = f.sub ? sub_map[f.var] : res.node_map[f.var];
      if (slot != aig::kLitInvalid) {
        stack.pop_back();
        continue;
      }
      if (f.sub) {
        if (optimized_sub.is_input(f.var)) {
          const aig::NodeId ov = sub_input_orig[f.var];
          if (res.node_map[ov] == aig::kLitInvalid) {
            stack.push_back({ov, false});
            continue;
          }
          slot = res.node_map[ov];
          stack.pop_back();
          continue;
        }
        const aig::Lit f0 = optimized_sub.fanin0(f.var);
        const aig::Lit f1 = optimized_sub.fanin1(f.var);
        bool ready = true;
        if (sub_map[aig::lit_var(f0)] == aig::kLitInvalid) {
          stack.push_back({aig::lit_var(f0), true});
          ready = false;
        }
        if (sub_map[aig::lit_var(f1)] == aig::kLitInvalid) {
          stack.push_back({aig::lit_var(f1), true});
          ready = false;
        }
        if (!ready) continue;
        slot = out.make_and(
            aig::lit_not_if(sub_map[aig::lit_var(f0)], aig::lit_is_complemented(f0)),
            aig::lit_not_if(sub_map[aig::lit_var(f1)], aig::lit_is_complemented(f1)));
        stack.pop_back();
        continue;
      }
      if (in_win[f.var] != 0) {
        const int j = out_index[f.var];
        if (j < 0) throw std::logic_error("splice_window: window-internal node referenced outside");
        const aig::Lit ol = optimized_sub.outputs()[static_cast<std::size_t>(j)];
        if (sub_map[aig::lit_var(ol)] == aig::kLitInvalid) {
          stack.push_back({aig::lit_var(ol), true});
          continue;
        }
        slot = aig::lit_not_if(sub_map[aig::lit_var(ol)], aig::lit_is_complemented(ol));
        stack.pop_back();
        continue;
      }
      const aig::Lit f0 = g.fanin0(f.var);
      const aig::Lit f1 = g.fanin1(f.var);
      bool ready = true;
      if (res.node_map[aig::lit_var(f0)] == aig::kLitInvalid) {
        stack.push_back({aig::lit_var(f0), false});
        ready = false;
      }
      if (res.node_map[aig::lit_var(f1)] == aig::kLitInvalid) {
        stack.push_back({aig::lit_var(f1), false});
        ready = false;
      }
      if (!ready) continue;
      slot = out.make_and(
          aig::lit_not_if(res.node_map[aig::lit_var(f0)], aig::lit_is_complemented(f0)),
          aig::lit_not_if(res.node_map[aig::lit_var(f1)], aig::lit_is_complemented(f1)));
      stack.pop_back();
    }
  };

  for (aig::NodeId id = 1; id < n; ++id) {
    if (need_g[id] == 0 || in_win[id] != 0 || !g.is_and(id)) continue;
    resolve(id);
  }
  for (std::size_t k = 0; k < g.outputs().size(); ++k) {
    const aig::Lit l = g.outputs()[k];
    resolve(aig::lit_var(l));
    out.add_output(
        aig::lit_not_if(res.node_map[aig::lit_var(l)], aig::lit_is_complemented(l)),
        g.output_name(k));
  }
  return res;
}

}  // namespace aigml::spec
