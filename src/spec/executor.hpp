#pragma once
// Speculative windowed move engine (DESIGN.md §12) — the batched-move
// replacement for opt::detail::search_loop's one-move-at-a-time body,
// selected by SaParams/GreedyParams::windows (recipe keys windows=N, par=1).
//
// Per round:
//   1. PARTITION   the current graph into up to `windows` disjoint windows
//                  keyed off node levels (window.hpp).
//   2. PROPOSE     one registry script per window, speculatively: extract
//                  the window, optimize the sub-AIG, splice it back, diff
//                  the candidate, and score it on the window's private
//                  forked evaluator (CostEvaluator::fork_worker) through the
//                  incremental protocol — rolled back immediately, so the
//                  worker stays bound to the round base.  With `parallel`,
//                  proposals run concurrently on util::ThreadPool; all
//                  randomness (script choice, the accept draw) comes from
//                  per-window forked RNG streams drawn before submission.
//   3. DECIDE      serially, in ascending window order: apply the caller's
//                  accept rule, then commit accepted proposals whose dirty
//                  regions do not overlap an earlier commit of this round
//                  (conflict.hpp); overlapping winners ABORT (their windows
//                  requeue naturally — the next round re-partitions the new
//                  graph).  The spec.commit_abort fault site can force
//                  aborts here for chaos testing.  The first commit adopts
//                  the speculative candidate; later commits re-apply their
//                  window's script on the updated graph through the
//                  splices' node maps, which preserves equivalence by
//                  construction (Galois-style optimism: the re-applied
//                  result is trued up by the round-end evaluation).
//   4. RECONCILE   after a committed round, the main evaluator scores the
//                  new current graph (one evaluation — the round's ground
//                  truth for best-tracking), and every worker rebinds its
//                  context to it.
//
// Determinism contract (fuzz- and bench-gated): for a fixed seed the
// trajectory — scripts, costs, accept/commit/abort decisions, history,
// best — is bit-identical for parallel on/off and for any thread count.
// Everything order-dependent happens in the serial DECIDE phase; the
// parallel phase computes pure per-window results into indexed slots from
// pre-forked RNG streams, and evaluation counts are per-window (never
// per-thread), so even accounting is thread-count independent.

#include <cstdint>
#include <functional>

#include "opt/strategy.hpp"

namespace aigml::spec {

struct SpecParams {
  /// Window count per round (>= 1; the engine is only entered when > 0).
  int windows = 0;
  /// Evaluate window proposals concurrently on the thread pool.
  bool parallel = false;
  /// Pool size when parallel; 0 = default_num_threads() (--threads).
  int threads = 0;
  /// Per-window AND cap passed to the partitioner (0 = auto).
  std::size_t max_window_nodes = 0;
  /// Route worker evaluations through the incremental protocol when the
  /// evaluator supports it (same knob as the classic loop; bit-identical).
  bool use_incremental = true;
};

/// Runs the engine described above.  Requires
/// `evaluator.supports_speculation()` (throws std::invalid_argument
/// otherwise, naming the evaluator).  `accept` and `post_iteration` have
/// search_loop's semantics; `accept` may be called concurrently for
/// different windows and must not mutate shared state (the strategies'
/// closures only read it — SA's temperature decays in the serial phase).
/// Budget semantics: max_iterations caps *proposals* (history records);
/// max_evals counts main + worker evaluator calls; both are checked at
/// round boundaries, so a round in flight finishes like an iteration does.
[[nodiscard]] opt::OptResult speculative_loop(
    const aig::Aig& initial, opt::CostEvaluator& evaluator, const opt::StopCondition& stop,
    opt::Observer* observer, const transforms::ScriptRegistry& registry, double weight_delay,
    double weight_area, std::uint64_t seed, const SpecParams& params,
    const std::function<bool(double, double, Rng&)>& accept,
    const std::function<void()>& post_iteration);

}  // namespace aigml::spec
