#pragma once
// DirtyRegion conflict detection for the speculative committer (DESIGN.md
// §12).  Two window proposals, both diffed against the same base graph,
// conflict when the id sets their dirty regions cover intersect — committing
// one invalidates the context the other was evaluated under.
//
// The id set of a region (in the shared before/after id space) is:
//     changed ids  ∪  [min(before_n, after_n), max(before_n, after_n))
// i.e. the explicitly listed record changes plus the grow/shrink tail, with
// `outputs_changed` treated as one extra shared "output vector" slot and
// `full` as the universal set.  Empty regions (structurally identical
// candidates) conflict with nothing.  Exactness against a brute-force
// boolean-vector intersection is fuzz-enforced by tests/test_spec.cpp.

#include "aig/dirty.hpp"

namespace aigml::spec {

[[nodiscard]] bool regions_overlap(const aig::DirtyRegion& a, const aig::DirtyRegion& b);

}  // namespace aigml::spec
