#include "gen/designs.hpp"

#include <stdexcept>

#include "gen/circuits.hpp"

namespace aigml::gen {

using aig::Aig;
using aig::kLitFalse;
using aig::Lit;
using aig::lit_not;

namespace {

/// One nonlinear mixing round.  Bit i combines with a majority of three taps
/// that are forced to be pairwise distinct and different from i (a repeated
/// tap would make maj() collapse to one operand, leaving a *linear* round:
/// with word width n and stride n/2 two such rounds cancel to constant 0 —
/// exactly the degeneracy that once zeroed out EX54).  Rounds alternate
/// XOR-mix and MUX-mix so the composition stays nonlinear, and the tap
/// strides vary with the round index.  The result is deep, reconvergent,
/// hard-to-simplify logic — the synthetic stand-in for the "miscellaneous
/// control logic" texture of the IWLS designs.
Word mix_round(Aig& g, const Word& w, int round) {
  const std::size_t n = w.size();
  Word out(n, kLitFalse);
  if (n < 5) {
    for (std::size_t i = 0; i < n; ++i) out[i] = g.make_xor(w[i], w[(i + 1) % n]);
    return out;
  }
  const auto r = static_cast<std::size_t>(round);
  for (std::size_t i = 0; i < n; ++i) {
    std::array<std::size_t, 3> taps{};
    std::size_t cursor = (i + 1 + r % 3) % n;
    for (std::size_t k = 0; k < 3; ++k) {
      while (cursor == i || (k > 0 && cursor == taps[0]) || (k > 1 && cursor == taps[1])) {
        cursor = (cursor + 1) % n;
      }
      taps[k] = cursor;
      cursor = (cursor + 2 + (r + k) % 4) % n;
    }
    const Lit m = g.make_maj(w[taps[0]], w[taps[1]], w[taps[2]]);
    out[i] = (round % 2 == 0) ? g.make_xor(w[i], m)
                              : g.make_mux(w[taps[0]], g.make_xor(w[i], m), lit_not(w[i]));
  }
  return out;
}

/// Applies mixing rounds until the graph holds ~target_ands AND nodes.
Word mix_to_size(Aig& g, Word w, int target_ands) {
  int round = 0;
  while (static_cast<int>(g.num_ands()) < target_ands) {
    w = mix_round(g, w, round++);
    if (round > 1000) break;  // defensive: should never trigger
  }
  return w;
}

/// Folds `bits` into exactly `k` outputs by XOR-reducing round-robin groups.
void fold_outputs(Aig& g, const Word& bits, int k) {
  std::vector<std::vector<Lit>> groups(static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < bits.size(); ++i) {
    groups[i % groups.size()].push_back(bits[i]);
  }
  for (int o = 0; o < k; ++o) {
    g.add_output(g.make_xor_n(groups[static_cast<std::size_t>(o)]),
                 "f" + std::to_string(o));
  }
}

// ---- per-design recipes (PI/PO counts must match Table III) -----------------

// EX00: 16 PI / 7 PO, small (paper: 69-189 nodes).
// 8+8-bit ripple adder with comparator spice, folded to 7 outputs.
Aig build_ex00() {
  Aig g;
  const Word a = add_input_word(g, 8, "a");
  const Word b = add_input_word(g, 8, "b");
  Word s = ripple_add(g, a, b);
  s.push_back(less_than(g, a, b));
  s.push_back(parity(g, a));
  fold_outputs(g, s, 7);
  return g.cleanup();
}

// EX68: 14 PI / 7 PO, small (paper: 62-140 nodes).
// 7+7-bit ripple adder, sum folded to 7 outputs.
Aig build_ex68() {
  Aig g;
  const Word a = add_input_word(g, 7, "a");
  const Word b = add_input_word(g, 7, "b");
  const Word s = ripple_add(g, a, b);
  fold_outputs(g, s, 7);
  return g.cleanup();
}

// EX08: 18 PI / 5 PO (paper: 1448-1828 nodes).
// 9x9 array multiplier plus mixing rounds to ~1650 nodes, folded to 5.
Aig build_ex08() {
  Aig g;
  const Word a = add_input_word(g, 9, "a");
  const Word b = add_input_word(g, 9, "b");
  Word p = array_multiply(g, a, b);
  p = mix_to_size(g, p, 1650);
  fold_outputs(g, p, 5);
  return g.cleanup();
}

// EX28: 17 PI / 7 PO (paper: 1296-2222 nodes).
// 9x8 multiplier plus mixing to ~1760 nodes.
Aig build_ex28() {
  Aig g;
  const Word a = add_input_word(g, 9, "a");
  const Word b = add_input_word(g, 8, "b");
  Word p = array_multiply(g, a, b);
  p = mix_to_size(g, p, 1760);
  fold_outputs(g, p, 7);
  return g.cleanup();
}

// EX02: 18 PI / 6 PO (paper: 848-1522 nodes).
// 9x9 multiplier with subtract-flavoured post-processing to ~1180 nodes.
Aig build_ex02() {
  Aig g;
  const Word a = add_input_word(g, 9, "a");
  const Word b = add_input_word(g, 9, "b");
  Word p = array_multiply(g, a, b);
  // Fold the 18 product bits against their reverse by subtraction.
  Word reversed(p.rbegin(), p.rend());
  Word d = subtract(g, p, reversed);
  d = mix_to_size(g, d, 1180);
  fold_outputs(g, d, 6);
  return g.cleanup();
}

// EX11: 17 PI / 7 PO (paper: 1253-2290 nodes).
// 7-bit 8-op ALU (7+7+3 = 17 PIs) plus mixing to ~1770 nodes.
Aig build_ex11() {
  Aig g;
  const Word a = add_input_word(g, 7, "a");
  const Word b = add_input_word(g, 7, "b");
  const Word op = add_input_word(g, 3, "op");
  // Inline ALU datapath (add/sub/logic + mux tree), same texture as gen::alu.
  const Word add = ripple_add(g, a, b);
  const Word sub = subtract(g, a, b);
  Word mixed;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Lit logic_and = g.make_and(a[i], b[i]);
    const Lit logic_xor = g.make_xor(a[i], b[i]);
    const Lit lo = g.make_mux(op[0], sub[i], add[i]);
    const Lit hi = g.make_mux(op[0], logic_xor, logic_and);
    mixed.push_back(g.make_mux(op[1], hi, lo));
  }
  mixed.push_back(g.make_mux(op[2], add.back(), sub.back()));
  mixed.push_back(less_than(g, a, b));
  mixed = mix_to_size(g, mixed, 1770);
  fold_outputs(g, mixed, 7);
  return g.cleanup();
}

// EX16: 16 PI / 5 PO (paper: 1237-2236 nodes).
// 8x8 multiplier plus mixing to ~1730 nodes.
Aig build_ex16() {
  Aig g;
  const Word a = add_input_word(g, 8, "a");
  const Word b = add_input_word(g, 8, "b");
  Word p = array_multiply(g, a, b);
  p = mix_to_size(g, p, 1730);
  fold_outputs(g, p, 5);
  return g.cleanup();
}

// EX54: 17 PI / 7 PO, largest (paper: 1469-3080 nodes).
// 9x8 multiplier + carry-lookahead recombination + mixing to ~2200 nodes.
Aig build_ex54() {
  Aig g;
  const Word a = add_input_word(g, 9, "a");
  const Word b = add_input_word(g, 8, "b");
  Word p = array_multiply(g, a, b);
  const Word lo(p.begin(), p.begin() + 8);
  const Word hi(p.begin() + 8, p.begin() + 16);
  Word s = carry_lookahead_add(g, lo, hi);
  s.push_back(p.back());
  s = mix_to_size(g, s, 2200);
  fold_outputs(g, s, 7);
  return g.cleanup();
}

}  // namespace

const std::vector<DesignSpec>& design_specs() {
  static const std::vector<DesignSpec> specs = {
      {"EX00", 16, 7, 69, 189, true},    {"EX08", 18, 5, 1448, 1828, true},
      {"EX28", 17, 7, 1296, 2222, true}, {"EX68", 14, 7, 62, 140, true},
      {"EX02", 18, 6, 848, 1522, false}, {"EX11", 17, 7, 1253, 2290, false},
      {"EX16", 16, 5, 1237, 2236, false}, {"EX54", 17, 7, 1469, 3080, false},
  };
  return specs;
}

const DesignSpec& design_spec(const std::string& name) {
  for (const DesignSpec& spec : design_specs()) {
    if (spec.name == name) return spec;
  }
  throw std::out_of_range("unknown design: " + name);
}

aig::Aig build_design(const std::string& name) {
  if (name == "EX00") return build_ex00();
  if (name == "EX08") return build_ex08();
  if (name == "EX28") return build_ex28();
  if (name == "EX68") return build_ex68();
  if (name == "EX02") return build_ex02();
  if (name == "EX11") return build_ex11();
  if (name == "EX16") return build_ex16();
  if (name == "EX54") return build_ex54();
  throw std::out_of_range("unknown design: " + name);
}

std::vector<std::string> training_designs() {
  std::vector<std::string> names;
  for (const DesignSpec& spec : design_specs()) {
    if (spec.training) names.push_back(spec.name);
  }
  return names;
}

std::vector<std::string> test_designs() {
  std::vector<std::string> names;
  for (const DesignSpec& spec : design_specs()) {
    if (!spec.training) names.push_back(spec.name);
  }
  return names;
}

}  // namespace aigml::gen
