#pragma once
// The eight experiment designs.
//
// The paper evaluates on eight IWLS-2024 contest benchmarks (EX00..EX68) —
// external data files this repository does not ship.  Per DESIGN.md §1 we
// substitute deterministic synthetic designs with the *same* PI/PO counts
// (Table III columns 1-2) and initial AIG sizes in the same range, built
// from arithmetic kernels (multipliers, adders, ALU, comparators) plus
// nonlinear mixing rounds that create deep reconvergent logic.
//
// The train/test split matches the paper: EX00/EX08/EX28/EX68 train,
// EX02/EX11/EX16/EX54 test.

#include <string>
#include <vector>

#include "aig/aig.hpp"

namespace aigml::gen {

struct DesignSpec {
  std::string name;        ///< paper's design name (EX..)
  int num_inputs = 0;      ///< PI count (matches Table III exactly)
  int num_outputs = 0;     ///< PO count (matches Table III exactly)
  int paper_nodes_lo = 0;  ///< node-count range reported in Table III
  int paper_nodes_hi = 0;
  bool training = false;   ///< member of the training split
};

/// All eight designs in Table III order (training block then test block).
[[nodiscard]] const std::vector<DesignSpec>& design_specs();

/// Spec lookup by name; throws std::out_of_range for unknown names.
[[nodiscard]] const DesignSpec& design_spec(const std::string& name);

/// Builds the named design.  Deterministic: equal names yield structurally
/// identical graphs.
[[nodiscard]] aig::Aig build_design(const std::string& name);

/// Names of the training / test splits.
[[nodiscard]] std::vector<std::string> training_designs();
[[nodiscard]] std::vector<std::string> test_designs();

}  // namespace aigml::gen
