#pragma once
// Combinational circuit generators.
//
// These stand in for the IWLS 2024 contest benchmarks used by the paper
// (which are external data files we do not ship): parameterized arithmetic
// blocks (verified against integer arithmetic in tests) plus seeded random
// control logic.  All generators are deterministic.

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "util/rng.hpp"

namespace aigml::gen {

using aig::Aig;
using aig::Lit;

/// Word of literals, LSB first.
using Word = std::vector<Lit>;

/// Creates `width` fresh inputs named `<prefix><bit>` and returns them LSB
/// first.
Word add_input_word(Aig& g, int width, const std::string& prefix);

/// Registers each bit of `bits` as an output named `<prefix><bit>`.
void add_output_word(Aig& g, const Word& bits, const std::string& prefix);

// ----- arithmetic building blocks (word-level, on existing literals) --------

/// sum, carry-out of a full adder.
struct FullAdderOut {
  Lit sum;
  Lit carry;
};
FullAdderOut full_adder(Aig& g, Lit a, Lit b, Lit cin);

/// Ripple-carry addition; returns width+1 bits (last = carry out).
Word ripple_add(Aig& g, const Word& a, const Word& b, Lit carry_in = aig::kLitFalse);

/// Carry-lookahead addition (block size 4); same interface as ripple_add.
Word carry_lookahead_add(Aig& g, const Word& a, const Word& b, Lit carry_in = aig::kLitFalse);

/// Two's-complement subtraction a - b; returns width bits plus borrow-free
/// carry bit (width+1 total).
Word subtract(Aig& g, const Word& a, const Word& b);

/// Array multiplication; returns |a|+|b| product bits.
Word array_multiply(Aig& g, const Word& a, const Word& b);

/// Wallace-tree multiplication (carry-save reduction of partial products,
/// final ripple adder); same interface/function as array_multiply but a
/// much shallower structure.
Word wallace_multiply(Aig& g, const Word& a, const Word& b);

/// Kogge-Stone parallel-prefix addition; returns width+1 bits.  Logarithmic
/// depth with heavy fanout on the prefix tree — a deliberately different
/// depth/fanout trade-off from ripple and CLA.
Word kogge_stone_add(Aig& g, const Word& a, const Word& b, Lit carry_in = aig::kLitFalse);

/// Equality / less-than (unsigned) comparators.
Lit equals(Aig& g, const Word& a, const Word& b);
Lit less_than(Aig& g, const Word& a, const Word& b);

/// XOR-reduction of a word.
Lit parity(Aig& g, const Word& a);

// ----- complete circuits ------------------------------------------------------

/// n x n array multiplier: inputs a[n], b[n]; outputs p[2n].
Aig multiplier(int width);

/// Ripple-carry adder circuit: inputs a[n], b[n], cin; outputs s[n], cout.
Aig adder_ripple(int width);

/// Carry-lookahead adder circuit with the same interface as adder_ripple.
Aig adder_cla(int width);

/// Kogge-Stone adder circuit with the same interface as adder_ripple.
Aig adder_kogge_stone(int width);

/// Wallace-tree multiplier circuit with the same interface as multiplier().
Aig multiplier_wallace(int width);

/// Unsigned comparator: inputs a[n], b[n]; outputs eq, lt, gt.
Aig comparator(int width);

/// Priority encoder: inputs req[n]; outputs grant[n] (one-hot highest
/// priority = lowest index) and `any`.
Aig priority_encoder(int width);

/// Parity tree over n inputs, 1 output.
Aig parity_tree(int width);

/// 8-function ALU slice: inputs a[w], b[w], op[3]; outputs r[w], flag.
/// ops: 0 add, 1 sub, 2 and, 3 or, 4 xor, 5 nor, 6 lt, 7 eq (result bit 0).
Aig alu(int width);

/// Seeded random reconvergent control logic with exactly `n_inputs` PIs and
/// `n_outputs` POs and approximately `target_ands` AND nodes.
Aig random_control(int n_inputs, int n_outputs, int target_ands, std::uint64_t seed);

}  // namespace aigml::gen
