#include "gen/circuits.hpp"

#include <stdexcept>
#include <string>

namespace aigml::gen {

using aig::kLitFalse;
using aig::kLitTrue;
using aig::lit_not;

Word add_input_word(Aig& g, int width, const std::string& prefix) {
  Word bits;
  bits.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) bits.push_back(g.add_input(prefix + std::to_string(i)));
  return bits;
}

void add_output_word(Aig& g, const Word& bits, const std::string& prefix) {
  for (std::size_t i = 0; i < bits.size(); ++i) {
    g.add_output(bits[i], prefix + std::to_string(i));
  }
}

FullAdderOut full_adder(Aig& g, Lit a, Lit b, Lit cin) {
  const Lit ab = g.make_xor(a, b);
  return FullAdderOut{g.make_xor(ab, cin), g.make_maj(a, b, cin)};
}

Word ripple_add(Aig& g, const Word& a, const Word& b, Lit carry_in) {
  if (a.size() != b.size()) throw std::invalid_argument("ripple_add: width mismatch");
  Word sum;
  sum.reserve(a.size() + 1);
  Lit carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto fa = full_adder(g, a[i], b[i], carry);
    sum.push_back(fa.sum);
    carry = fa.carry;
  }
  sum.push_back(carry);
  return sum;
}

Word carry_lookahead_add(Aig& g, const Word& a, const Word& b, Lit carry_in) {
  if (a.size() != b.size()) throw std::invalid_argument("carry_lookahead_add: width mismatch");
  constexpr std::size_t kBlock = 4;
  Word sum;
  sum.reserve(a.size() + 1);
  Lit carry = carry_in;
  for (std::size_t base = 0; base < a.size(); base += kBlock) {
    const std::size_t end = std::min(base + kBlock, a.size());
    // Generate/propagate per bit; block-internal carries computed by
    // lookahead: c[i+1] = g[i] | p[i] & c[i], flattened.
    std::vector<Lit> gen, prop, carries{carry};
    for (std::size_t i = base; i < end; ++i) {
      gen.push_back(g.make_and(a[i], b[i]));
      prop.push_back(g.make_xor(a[i], b[i]));
    }
    for (std::size_t i = 0; i < gen.size(); ++i) {
      // c_{i+1} = g_i | (p_i & (g_{i-1} | ... )) — build from previous carry
      // expression directly; the lookahead structure emerges after strash.
      carries.push_back(g.make_or(gen[i], g.make_and(prop[i], carries[i])));
    }
    for (std::size_t i = 0; i < gen.size(); ++i) {
      sum.push_back(g.make_xor(prop[i], carries[i]));
    }
    carry = carries.back();
  }
  sum.push_back(carry);
  return sum;
}

Word subtract(Aig& g, const Word& a, const Word& b) {
  Word b_inverted;
  b_inverted.reserve(b.size());
  for (const Lit bit : b) b_inverted.push_back(lit_not(bit));
  return ripple_add(g, a, b_inverted, kLitTrue);
}

Word array_multiply(Aig& g, const Word& a, const Word& b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  Word acc(n + m, kLitFalse);
  for (std::size_t j = 0; j < m; ++j) {
    // Partial product a * b_j shifted by j, accumulated by ripple addition.
    Lit carry = kLitFalse;
    for (std::size_t i = 0; i < n; ++i) {
      const Lit pp = g.make_and(a[i], b[j]);
      const auto fa = full_adder(g, acc[i + j], pp, carry);
      acc[i + j] = fa.sum;
      carry = fa.carry;
    }
    // Propagate the final carry into the remaining accumulator bits.
    for (std::size_t k = n + j; k < n + m && carry != kLitFalse; ++k) {
      const Lit prev = acc[k];
      acc[k] = g.make_xor(prev, carry);
      carry = g.make_and(prev, carry);
    }
  }
  return acc;
}

Word wallace_multiply(Aig& g, const Word& a, const Word& b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  // Column-wise partial-product collection.
  std::vector<std::vector<Lit>> columns(n + m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      columns[i + j].push_back(g.make_and(a[i], b[j]));
    }
  }
  // Carry-save reduction: compress every column with full/half adders until
  // no column holds more than two bits.
  bool reduced = true;
  while (reduced) {
    reduced = false;
    for (std::size_t col = 0; col < columns.size(); ++col) {
      while (columns[col].size() > 2) {
        reduced = true;
        if (columns[col].size() >= 3) {
          const Lit x = columns[col][0];
          const Lit y = columns[col][1];
          const Lit z = columns[col][2];
          columns[col].erase(columns[col].begin(), columns[col].begin() + 3);
          const auto fa = full_adder(g, x, y, z);
          columns[col].push_back(fa.sum);
          if (col + 1 < columns.size()) columns[col + 1].push_back(fa.carry);
        }
      }
    }
  }
  // Final carry-propagate addition of the two remaining rows.
  Word row0(columns.size(), kLitFalse), row1(columns.size(), kLitFalse);
  for (std::size_t col = 0; col < columns.size(); ++col) {
    if (!columns[col].empty()) row0[col] = columns[col][0];
    if (columns[col].size() > 1) row1[col] = columns[col][1];
  }
  Word sum = ripple_add(g, row0, row1);
  sum.resize(n + m);  // the top carry is always 0 for n x m multiplication
  return sum;
}

Word kogge_stone_add(Aig& g, const Word& a, const Word& b, Lit carry_in) {
  if (a.size() != b.size()) throw std::invalid_argument("kogge_stone_add: width mismatch");
  const std::size_t n = a.size();
  // Bit-level generate/propagate; carry_in folds into position 0's generate:
  // g0' = g0 | (p0 & cin).
  std::vector<Lit> gen(n), prop(n);
  for (std::size_t i = 0; i < n; ++i) {
    gen[i] = g.make_and(a[i], b[i]);
    prop[i] = g.make_xor(a[i], b[i]);
  }
  std::vector<Lit> sum_prop = prop;  // XORs for the sum, pre-prefix
  if (carry_in != kLitFalse) {
    gen[0] = g.make_or(gen[0], g.make_and(prop[0], carry_in));
  }
  // Parallel-prefix combine: (G, P) o (G', P') = (G | P & G', P & P').
  for (std::size_t stride = 1; stride < n; stride *= 2) {
    std::vector<Lit> next_gen = gen, next_prop = prop;
    for (std::size_t i = stride; i < n; ++i) {
      next_gen[i] = g.make_or(gen[i], g.make_and(prop[i], gen[i - stride]));
      next_prop[i] = g.make_and(prop[i], prop[i - stride]);
    }
    gen = std::move(next_gen);
    prop = std::move(next_prop);
  }
  // carry into bit i is gen[i-1] (prefix over [0, i-1]); cin into bit 0.
  Word sum(n + 1, kLitFalse);
  sum[0] = g.make_xor(sum_prop[0], carry_in);
  for (std::size_t i = 1; i < n; ++i) sum[i] = g.make_xor(sum_prop[i], gen[i - 1]);
  sum[n] = gen[n - 1];
  return sum;
}

Lit equals(Aig& g, const Word& a, const Word& b) {
  std::vector<Lit> bit_eq;
  bit_eq.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) bit_eq.push_back(g.make_xnor(a[i], b[i]));
  return g.make_and_n(bit_eq);
}

Lit less_than(Aig& g, const Word& a, const Word& b) {
  // MSB-first chain: lt_i = (!a_i & b_i) | (a_i == b_i) & lt_{i-1}.
  Lit lt = kLitFalse;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Lit bit_lt = g.make_and(lit_not(a[i]), b[i]);
    const Lit bit_eq = g.make_xnor(a[i], b[i]);
    lt = g.make_or(bit_lt, g.make_and(bit_eq, lt));
  }
  return lt;
}

Lit parity(Aig& g, const Word& a) { return g.make_xor_n(a); }

Aig multiplier(int width) {
  Aig g;
  const Word a = add_input_word(g, width, "a");
  const Word b = add_input_word(g, width, "b");
  add_output_word(g, array_multiply(g, a, b), "p");
  return g;
}

Aig adder_ripple(int width) {
  Aig g;
  const Word a = add_input_word(g, width, "a");
  const Word b = add_input_word(g, width, "b");
  const Lit cin = g.add_input("cin");
  const Word s = ripple_add(g, a, b, cin);
  add_output_word(g, s, "s");
  return g;
}

Aig adder_cla(int width) {
  Aig g;
  const Word a = add_input_word(g, width, "a");
  const Word b = add_input_word(g, width, "b");
  const Lit cin = g.add_input("cin");
  const Word s = carry_lookahead_add(g, a, b, cin);
  add_output_word(g, s, "s");
  return g;
}

Aig adder_kogge_stone(int width) {
  Aig g;
  const Word a = add_input_word(g, width, "a");
  const Word b = add_input_word(g, width, "b");
  const Lit cin = g.add_input("cin");
  add_output_word(g, kogge_stone_add(g, a, b, cin), "s");
  return g;
}

Aig multiplier_wallace(int width) {
  Aig g;
  const Word a = add_input_word(g, width, "a");
  const Word b = add_input_word(g, width, "b");
  add_output_word(g, wallace_multiply(g, a, b), "p");
  return g;
}

Aig comparator(int width) {
  Aig g;
  const Word a = add_input_word(g, width, "a");
  const Word b = add_input_word(g, width, "b");
  const Lit eq = equals(g, a, b);
  const Lit lt = less_than(g, a, b);
  g.add_output(eq, "eq");
  g.add_output(lt, "lt");
  g.add_output(g.make_and(lit_not(eq), lit_not(lt)), "gt");
  return g;
}

Aig priority_encoder(int width) {
  Aig g;
  const Word req = add_input_word(g, width, "req");
  Lit higher_active = kLitFalse;
  Word grant;
  for (int i = 0; i < width; ++i) {
    grant.push_back(g.make_and(req[static_cast<std::size_t>(i)], lit_not(higher_active)));
    higher_active = g.make_or(higher_active, req[static_cast<std::size_t>(i)]);
  }
  add_output_word(g, grant, "grant");
  g.add_output(higher_active, "any");
  return g;
}

Aig parity_tree(int width) {
  Aig g;
  const Word in = add_input_word(g, width, "x");
  g.add_output(parity(g, in), "parity");
  return g;
}

Aig alu(int width) {
  Aig g;
  const Word a = add_input_word(g, width, "a");
  const Word b = add_input_word(g, width, "b");
  const Word op = add_input_word(g, 3, "op");

  const Word add = ripple_add(g, a, b);
  const Word sub = subtract(g, a, b);
  Word bit_and, bit_or, bit_xor, bit_nor;
  for (std::size_t i = 0; i < a.size(); ++i) {
    bit_and.push_back(g.make_and(a[i], b[i]));
    bit_or.push_back(g.make_or(a[i], b[i]));
    bit_xor.push_back(g.make_xor(a[i], b[i]));
    bit_nor.push_back(g.make_nor(a[i], b[i]));
  }
  const Lit lt = less_than(g, a, b);
  const Lit eq = equals(g, a, b);

  // 8:1 result mux per bit, built as a 3-level MUX tree on op bits.
  Word result;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Lit cand0 = add[i];
    const Lit cand1 = sub[i];
    const Lit cand2 = bit_and[i];
    const Lit cand3 = bit_or[i];
    const Lit cand4 = bit_xor[i];
    const Lit cand5 = bit_nor[i];
    const Lit cand6 = i == 0 ? lt : kLitFalse;
    const Lit cand7 = i == 0 ? eq : kLitFalse;
    const Lit m01 = g.make_mux(op[0], cand1, cand0);
    const Lit m23 = g.make_mux(op[0], cand3, cand2);
    const Lit m45 = g.make_mux(op[0], cand5, cand4);
    const Lit m67 = g.make_mux(op[0], cand7, cand6);
    const Lit lo = g.make_mux(op[1], m23, m01);
    const Lit hi = g.make_mux(op[1], m67, m45);
    result.push_back(g.make_mux(op[2], hi, lo));
  }
  add_output_word(g, result, "r");
  // Flag: carry for add, borrow for sub, otherwise parity of the result.
  const Lit flag_arith = g.make_mux(op[0], sub.back(), add.back());
  const Lit flag = g.make_mux(g.make_or(op[1], op[2]), parity(g, result), flag_arith);
  g.add_output(flag, "flag");
  return g;
}

Aig random_control(int n_inputs, int n_outputs, int target_ands, std::uint64_t seed) {
  Rng rng(seed);
  Aig g;
  std::vector<Lit> pool;
  for (int i = 0; i < n_inputs; ++i) pool.push_back(g.add_input());

  // Grow a reconvergent DAG: favor recent nodes so depth develops, and mix
  // AND/OR/XOR/MUX textures so mapping sees diverse cut functions.
  auto pick = [&]() -> Lit {
    // Triangular bias toward the back of the pool.
    const std::size_t n = pool.size();
    const std::size_t i = std::max(rng.next_below(n), rng.next_below(n));
    const Lit lit = pool[i];
    return rng.next_bool() ? lit_not(lit) : lit;
  };

  // Grow to ~85% of the budget; the output-collection trees below supply the
  // remainder and keep the whole DAG alive.
  const int growth_budget = target_ands - target_ands / 7;
  while (static_cast<int>(g.num_ands()) < growth_budget) {
    const std::size_t before = g.num_ands();
    Lit made;
    switch (rng.next_below(8)) {
      case 0:
      case 1:
      case 2:
        made = g.make_and(pick(), pick());
        break;
      case 3:
      case 4:
        made = g.make_or(pick(), pick());
        break;
      case 5:
      case 6:
        made = g.make_xor(pick(), pick());
        break;
      default:
        made = g.make_mux(pick(), pick(), pick());
        break;
    }
    if (g.num_ands() > before) pool.push_back(made);
  }

  // Every dead-end node is folded into one of the outputs so that the
  // generated size tracks target_ands after cleanup.
  std::vector<std::uint32_t> used(g.num_nodes(), 0);
  for (aig::NodeId id = 0; id < g.num_nodes(); ++id) {
    if (!g.is_and(id)) continue;
    ++used[aig::lit_var(g.fanin0(id))];
    ++used[aig::lit_var(g.fanin1(id))];
  }
  std::vector<std::vector<Lit>> buckets(static_cast<std::size_t>(n_outputs));
  std::size_t bucket = 0;
  for (const Lit lit : pool) {
    if (aig::lit_var(lit) < used.size() && used[aig::lit_var(lit)] == 0 && g.is_and(aig::lit_var(lit))) {
      buckets[bucket % buckets.size()].push_back(lit);
      ++bucket;
    }
  }
  for (int o = 0; o < n_outputs; ++o) {
    auto& sinks = buckets[static_cast<std::size_t>(o)];
    if (sinks.empty()) sinks.push_back(pool[pool.size() - 1 - static_cast<std::size_t>(o) % pool.size()]);
    // Alternate the combining operator for functional diversity.
    Lit acc = sinks[0];
    for (std::size_t i = 1; i < sinks.size(); ++i) {
      switch ((static_cast<std::size_t>(o) + i) % 3) {
        case 0: acc = g.make_xor(acc, sinks[i]); break;
        case 1: acc = g.make_or(acc, sinks[i]); break;
        default: acc = g.make_and(acc, lit_not(sinks[i])); break;
      }
    }
    g.add_output(acc);
  }
  return g.cleanup();
}

}  // namespace aigml::gen
