#include "opt/greedy.hpp"

#include <stdexcept>

namespace aigml::opt {

GreedyStrategy::GreedyStrategy(GreedyParams params) : params_(params) {
  if (params_.tolerance < 0.0) throw std::invalid_argument("GreedyStrategy: negative tolerance");
  if (params_.windows < 0) throw std::invalid_argument("GreedyStrategy: windows < 0");
  if (params_.parallel && params_.windows == 0) {
    throw std::invalid_argument("GreedyStrategy: parallel requires windows >= 1");
  }
}

OptResult GreedyStrategy::run(const aig::Aig& initial, CostEvaluator& evaluator,
                              const StopCondition& stop, Observer* observer,
                              const transforms::ScriptRegistry& registry) const {
  detail::validate_stop(stop, "GreedyStrategy");
  const auto accept = [&](double candidate_cost, double current_cost, Rng&) {
    return candidate_cost <= current_cost * (1.0 + params_.tolerance);
  };
  return detail::search_loop(initial, evaluator, stop, observer, registry,
                             params_.weight_delay, params_.weight_area, params_.seed,
                             params_.incremental, params_.windows, params_.parallel, accept,
                             [] {});
}

std::unique_ptr<Strategy> GreedyStrategy::reseeded(std::uint64_t seed) const {
  GreedyParams params = params_;
  params.seed = seed;
  return std::make_unique<GreedyStrategy>(params);
}

OptResult greedy_descent(const aig::Aig& initial, CostEvaluator& evaluator,
                         const GreedyParams& params, const transforms::ScriptRegistry& registry) {
  if (params.iterations < 1) throw std::invalid_argument("greedy_descent: iterations < 1");
  if (params.tolerance < 0.0) throw std::invalid_argument("greedy_descent: negative tolerance");
  StopCondition stop;
  stop.max_iterations = params.iterations;
  return GreedyStrategy(params).run(initial, evaluator, stop, nullptr, registry);
}

}  // namespace aigml::opt
