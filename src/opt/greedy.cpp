#include "opt/greedy.hpp"

#include <stdexcept>

#include "util/timer.hpp"

namespace aigml::opt {

SaResult greedy_descent(const aig::Aig& initial, CostEvaluator& evaluator,
                        const GreedyParams& params, const transforms::ScriptRegistry& registry) {
  if (params.iterations < 1) throw std::invalid_argument("greedy_descent: iterations < 1");
  if (params.tolerance < 0.0) throw std::invalid_argument("greedy_descent: negative tolerance");
  Timer total_timer;
  Rng rng(params.seed);

  SaResult result;
  result.initial_eval = evaluator.evaluate(initial);
  const double delay0 = result.initial_eval.delay > 0 ? result.initial_eval.delay : 1.0;
  const double area0 = result.initial_eval.area > 0 ? result.initial_eval.area : 1.0;
  auto cost_of = [&](const QualityEval& q) {
    return params.weight_delay * q.delay / delay0 + params.weight_area * q.area / area0;
  };

  aig::Aig current = initial;
  double current_cost = cost_of(result.initial_eval);
  result.best = initial;
  result.best_eval = result.initial_eval;
  result.best_cost = current_cost;
  result.history.reserve(static_cast<std::size_t>(params.iterations));

  for (int iter = 0; iter < params.iterations; ++iter) {
    IterationRecord record;
    record.script_index = registry.random_index(rng);
    Timer transform_timer;
    aig::Aig candidate = registry.apply(record.script_index, current);
    record.transform_seconds = transform_timer.elapsed_s();

    const double eval_before = evaluator.eval_seconds();
    const QualityEval q = evaluator.evaluate(candidate);
    record.eval_seconds = evaluator.eval_seconds() - eval_before;
    record.delay = q.delay;
    record.area = q.area;
    record.cost = cost_of(q);
    record.accepted = record.cost <= current_cost * (1.0 + params.tolerance);
    if (record.accepted) {
      current = std::move(candidate);
      current_cost = record.cost;
      if (record.cost < result.best_cost) {
        result.best = current;
        result.best_eval = q;
        result.best_cost = record.cost;
      }
    }
    result.total_transform_seconds += record.transform_seconds;
    result.total_eval_seconds += record.eval_seconds;
    result.history.push_back(record);
  }
  result.total_seconds = total_timer.elapsed_s();
  return result;
}

}  // namespace aigml::opt
