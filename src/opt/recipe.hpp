#pragma once
// Recipe — a declarative, round-trippable description of one optimization
// run: which strategy, which budgets, which cost oracle.  The text grammar
// is `key=value` pairs joined by ';':
//
//   strategy=sa|greedy|portfolio   (default sa)
//   iters=N          iteration budget (per start for portfolio; default 200)
//   max_seconds=X    wall-time budget, 0 = unlimited
//   max_evals=N      evaluator-call budget, 0 = unlimited
//   wd=X / wa=X      delay / area cost weights (default 1 / 0.5)
//   seed=N           RNG seed (default 1)
//   temp=X           SA initial temperature (default 0.08)
//   decay=X          SA geometric temperature decay (default 0.97)
//   tol=X            greedy plateau tolerance (default 0)
//   starts=N         portfolio repetitions (default 3)
//   inner=sa|greedy  portfolio inner strategy (default sa)
//   cost=SPEC        cost spec (cost_spec.hpp grammar; default proxy)
//   quant=Q          value representation for cost=ml:<dir> models loaded
//                    from .gbdt2 containers: none | fp16 | int16 (default
//                    none = fp64, bit-identical to the text loader)
//   fallback=F       degraded-mode oracle for cost=serve: specs — proxy or
//                    ml:<model-dir> (default none: a dead server fails the
//                    run).  Degraded evaluations are counted in
//                    OptResult::degraded_evals (DESIGN.md §10).
//   inc=0|1          incremental move evaluation (default 1; bit-identical
//                    trajectories either way — a perf/debug knob, §8)
//   windows=N        speculative windowed move engine (default 0 = classic
//                    one-move loop): propose one transform per disjoint
//                    window per round, commit non-conflicting winners in
//                    deterministic order (DESIGN.md §12).  Needs a forkable
//                    cost (proxy, ml, gt — not serve/learn).
//   par=0|1          evaluate window proposals concurrently on the thread
//                    pool (--threads / AIGML_THREADS; default 0).  Requires
//                    windows >= 1; trajectories are bit-identical to par=0
//                    at any thread count.
//   learn=0|1        closed-loop active learning (default 0; requires
//                    cost=ml:<dir> and the learn::run runner — harvests
//                    ground-truth labels during the search and hot-reloads
//                    refreshed models mid-run, DESIGN.md §9)
//   learn_budget=N   max states labeled per run (default 64)
//   learn_dir=PATH   persist the harvest (replay buffer + refreshed model
//                    files) under PATH (default: in-memory only)
//
// Example: `strategy=sa;iters=500;decay=0.97;cost=ml:models;wd=1;wa=0.5`.
// parse() rejects unknown keys and malformed numbers with messages naming
// the offending segment; to_string() emits a canonical form that parses
// back to an identical Recipe (numbers print with shortest round-trip
// precision).  opt::run(recipe, aig, ctx) is the single entry point that
// executes one.

#include <cstdint>
#include <memory>
#include <string>

#include "opt/cost_spec.hpp"
#include "opt/strategy.hpp"

namespace aigml::opt {

struct Recipe {
  std::string strategy = "sa";  ///< sa | greedy | portfolio
  int iterations = 200;
  double max_seconds = 0.0;
  std::uint64_t max_evals = 0;
  double weight_delay = 1.0;
  double weight_area = 0.5;
  std::uint64_t seed = 1;
  // SA knobs.
  double initial_temperature = 0.08;
  double decay = 0.97;
  // Greedy knob.
  double tolerance = 0.0;
  // Portfolio knobs.
  int starts = 3;
  std::string inner = "sa";  ///< sa | greedy
  // Evaluator.
  std::string cost = "proxy";
  // Dequantization mode for ml:<dir> models from .gbdt2 (none|fp16|int16).
  std::string quant = "none";
  // Degraded-mode fallback for serve: costs ("" = fail hard).
  std::string fallback;
  // Incremental move evaluation (perf knob; trajectories are identical).
  bool incremental = true;
  // Speculative windowed move engine (0 = classic loop; DESIGN.md §12).
  int spec_windows = 0;
  // Parallel window proposals (bit-identical to serial; needs spec_windows).
  bool spec_parallel = false;
  // Active learning (learn::run executes these; opt::run rejects learn=1
  // because it has no registry to install refreshed models into).
  bool learn = false;
  int learn_budget = 64;
  std::string learn_dir;

  /// Parses the grammar above; throws std::invalid_argument on unknown
  /// keys, malformed numbers, or invalid strategy names.
  [[nodiscard]] static Recipe parse(const std::string& text);

  /// Canonical text form; parse(to_string()) == *this field-for-field.
  [[nodiscard]] std::string to_string() const;

  /// Instantiates the configured strategy.
  [[nodiscard]] std::unique_ptr<Strategy> make_strategy() const;

  /// The unified budget this recipe requests.
  [[nodiscard]] StopCondition stop_condition() const;

  [[nodiscard]] bool operator==(const Recipe&) const = default;
};

/// Executes one recipe: builds the cost evaluator from `recipe.cost` and
/// `ctx`, instantiates the strategy, and runs it to its budget.
[[nodiscard]] OptResult run(const Recipe& recipe, const aig::Aig& initial,
                            const CostContext& ctx, Observer* observer = nullptr);

/// Convenience overload parsing `recipe_text` first.
[[nodiscard]] OptResult run(const std::string& recipe_text, const aig::Aig& initial,
                            const CostContext& ctx, Observer* observer = nullptr);

}  // namespace aigml::opt
