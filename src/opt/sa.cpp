#include "opt/sa.hpp"

#include <cmath>
#include <stdexcept>

#include "util/timer.hpp"

namespace aigml::opt {

SaResult simulated_annealing(const aig::Aig& initial, CostEvaluator& evaluator,
                             const SaParams& params, const transforms::ScriptRegistry& registry) {
  if (params.iterations < 1) throw std::invalid_argument("simulated_annealing: iterations < 1");
  if (params.decay <= 0.0 || params.decay > 1.0) {
    throw std::invalid_argument("simulated_annealing: decay must be in (0, 1]");
  }
  Timer total_timer;
  Rng rng(params.seed);

  SaResult result;
  result.initial_eval = evaluator.evaluate(initial);
  const double delay0 = result.initial_eval.delay > 0 ? result.initial_eval.delay : 1.0;
  const double area0 = result.initial_eval.area > 0 ? result.initial_eval.area : 1.0;
  auto cost_of = [&](const QualityEval& q) {
    return params.weight_delay * q.delay / delay0 + params.weight_area * q.area / area0;
  };

  aig::Aig current = initial;
  double current_cost = cost_of(result.initial_eval);
  result.best = initial;
  result.best_eval = result.initial_eval;
  result.best_cost = current_cost;

  double temperature = params.initial_temperature;
  result.history.reserve(static_cast<std::size_t>(params.iterations));

  for (int iter = 0; iter < params.iterations; ++iter) {
    IterationRecord record;
    record.script_index = registry.random_index(rng);

    Timer transform_timer;
    aig::Aig candidate = registry.apply(record.script_index, current);
    record.transform_seconds = transform_timer.elapsed_s();

    const double eval_before = evaluator.eval_seconds();
    const QualityEval q = evaluator.evaluate(candidate);
    record.eval_seconds = evaluator.eval_seconds() - eval_before;

    record.delay = q.delay;
    record.area = q.area;
    record.cost = cost_of(q);
    const double delta = record.cost - current_cost;
    const bool accept =
        delta < 0.0 || (temperature > 0.0 && rng.next_double() < std::exp(-delta / temperature));
    record.accepted = accept;
    if (accept) {
      current = std::move(candidate);
      current_cost = record.cost;
      if (record.cost < result.best_cost) {
        result.best = current;
        result.best_eval = q;
        result.best_cost = record.cost;
      }
    }
    temperature *= params.decay;
    result.total_transform_seconds += record.transform_seconds;
    result.total_eval_seconds += record.eval_seconds;
    result.history.push_back(record);
  }
  result.total_seconds = total_timer.elapsed_s();
  return result;
}

}  // namespace aigml::opt
