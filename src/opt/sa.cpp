#include "opt/sa.hpp"

#include <cmath>
#include <stdexcept>

namespace aigml::opt {

SaStrategy::SaStrategy(SaParams params) : params_(params) {
  if (params_.decay <= 0.0 || params_.decay > 1.0) {
    throw std::invalid_argument("SaStrategy: decay must be in (0, 1]");
  }
  if (params_.initial_temperature < 0.0) {
    throw std::invalid_argument("SaStrategy: initial_temperature < 0");
  }
  if (params_.windows < 0) throw std::invalid_argument("SaStrategy: windows < 0");
  if (params_.parallel && params_.windows == 0) {
    throw std::invalid_argument("SaStrategy: parallel requires windows >= 1");
  }
}

OptResult SaStrategy::run(const aig::Aig& initial, CostEvaluator& evaluator,
                          const StopCondition& stop, Observer* observer,
                          const transforms::ScriptRegistry& registry) const {
  detail::validate_stop(stop, "SaStrategy");
  double temperature = params_.initial_temperature;
  const auto accept = [&](double candidate_cost, double current_cost, Rng& rng) {
    const double delta = candidate_cost - current_cost;
    return delta < 0.0 ||
           (temperature > 0.0 && rng.next_double() < std::exp(-delta / temperature));
  };
  const auto post_iteration = [&] { temperature *= params_.decay; };
  return detail::search_loop(initial, evaluator, stop, observer, registry,
                             params_.weight_delay, params_.weight_area, params_.seed,
                             params_.incremental, params_.windows, params_.parallel, accept,
                             post_iteration);
}

std::unique_ptr<Strategy> SaStrategy::reseeded(std::uint64_t seed) const {
  SaParams params = params_;
  params.seed = seed;
  return std::make_unique<SaStrategy>(params);
}

SaResult simulated_annealing(const aig::Aig& initial, CostEvaluator& evaluator,
                             const SaParams& params, const transforms::ScriptRegistry& registry) {
  if (params.iterations < 1) throw std::invalid_argument("simulated_annealing: iterations < 1");
  if (params.decay <= 0.0 || params.decay > 1.0) {
    throw std::invalid_argument("simulated_annealing: decay must be in (0, 1]");
  }
  StopCondition stop;
  stop.max_iterations = params.iterations;
  return SaStrategy(params).run(initial, evaluator, stop, nullptr, registry);
}

}  // namespace aigml::opt
