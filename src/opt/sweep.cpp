#include "opt/sweep.hpp"

#include "util/timer.hpp"

namespace aigml::opt {

SweepResult sweep_flow(const aig::Aig& initial, CostEvaluator& evaluator,
                       const cell::Library& lib, const SweepConfig& config) {
  Timer total;
  SweepResult result;
  GroundTruthCost scorer(lib);
  std::uint64_t seed = config.seed;
  for (const WeightPair& weights : config.weight_pairs) {
    for (const double decay : config.decays) {
      SaParams params;
      params.iterations = config.iterations;
      params.initial_temperature = config.initial_temperature;
      params.decay = decay;
      params.weight_delay = weights.delay;
      params.weight_area = weights.area;
      params.seed = seed++;

      SaResult sa = simulated_annealing(initial, evaluator, params);
      SweepRun run;
      run.params = params;
      run.evaluator_claimed = sa.best_eval;
      run.ground_truth = scorer.evaluate(sa.best);
      run.seconds = sa.total_seconds;
      run.transform_seconds = sa.total_transform_seconds;
      run.eval_seconds = sa.total_eval_seconds;
      result.runs.push_back(run);
    }
  }
  std::vector<ParetoPoint> points;
  points.reserve(result.runs.size());
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    points.push_back(
        ParetoPoint{result.runs[i].ground_truth.delay, result.runs[i].ground_truth.area, i});
  }
  result.front = pareto_front(points);
  result.total_seconds = total.elapsed_s();
  return result;
}

}  // namespace aigml::opt
