#include "opt/sweep.hpp"

#include <stdexcept>

#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace aigml::opt {

std::vector<Recipe> SweepConfig::to_recipes() const {
  std::vector<Recipe> recipes;
  recipes.reserve(weight_pairs.size() * decays.size());
  std::uint64_t next_seed = seed;
  for (const WeightPair& weights : weight_pairs) {
    for (const double d : decays) {
      Recipe recipe;
      recipe.strategy = "sa";
      recipe.iterations = iterations;
      recipe.initial_temperature = initial_temperature;
      recipe.decay = d;
      recipe.weight_delay = weights.delay;
      recipe.weight_area = weights.area;
      recipe.seed = next_seed++;
      recipe.cost = cost;
      recipes.push_back(recipe);
    }
  }
  return recipes;
}

SweepResult run_sweep(const aig::Aig& initial, std::span<const Recipe> recipes,
                      const CostContext& ctx, int num_threads) {
  if (ctx.library == nullptr) {
    throw std::invalid_argument("run_sweep: CostContext::library is required "
                                "(ground-truth re-scoring of every run)");
  }
  Timer total;
  SweepResult result;
  ThreadPool pool(num_threads);
  result.runs = pool.parallel_map<SweepRun>(recipes.size(), [&](std::size_t i) {
    const Recipe& recipe = recipes[i];
    const std::unique_ptr<CostEvaluator> evaluator = make_cost(recipe.cost, ctx);
    const std::unique_ptr<Strategy> strategy = recipe.make_strategy();
    const OptResult r = strategy->run(initial, *evaluator, recipe.stop_condition());

    // Ground-truth scoring happens inside the task: a private evaluator per
    // run keeps the pass parallel and the accounting run-local.
    GroundTruthCost scorer(*ctx.library);
    SweepRun run;
    run.recipe = recipe;
    run.evaluator_claimed = r.best_eval;
    run.ground_truth = scorer.evaluate(r.best);
    run.seconds = r.total_seconds;
    run.transform_seconds = r.total_transform_seconds;
    run.eval_seconds = r.total_eval_seconds;
    run.evals = r.eval_count;
    return run;
  });

  std::vector<ParetoPoint> points;
  points.reserve(result.runs.size());
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    points.push_back(
        ParetoPoint{result.runs[i].ground_truth.delay, result.runs[i].ground_truth.area, i});
  }
  result.front = pareto_front(points);
  result.total_seconds = total.elapsed_s();
  return result;
}

}  // namespace aigml::opt
