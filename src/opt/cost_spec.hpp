#pragma once
// Cost-spec factory — one string names the reward oracle of a flow, so a
// recipe (recipe.hpp) or a CLI flag can swap the paper's Fig. 3 evaluators
// without code changes:
//
//   "proxy"                          ProxyCost (levels / node count)
//   "gt" | "truth" | "ground-truth"  GroundTruthCost (map + STA; needs
//                                    CostContext::library)
//   "ml"                             MlCost over the in-memory models in
//                                    CostContext (delay_model / area_model)
//   "ml:<model-dir>"                 MlCost over <dir>/delay.gbdt and
//                                    <dir>/area.gbdt loaded from disk
//   "gnn:<model-dir>[:<delay>[,<area>]]"
//                                    MlCost in graph mode over
//                                    <dir>/<name>.gnn containers (names
//                                    default to "delay" / "area") — the GNN
//                                    family consumes the AIG itself
//   "serve:<host>:<port>[:<delay-model>[,<area-model>]]"
//                                    RemoteCost — every evaluation is
//                                    answered by a running `aigml serve`
//                                    instance over TCP (model names default
//                                    to "delay" / "area")
//
// Malformed or unsatisfiable specs throw std::invalid_argument with a
// message naming the spec and what is missing.

#include <cstdint>
#include <memory>
#include <string>

#include "opt/cost.hpp"
#include "serve/client.hpp"

namespace aigml::opt {

/// Ambient resources a cost spec may draw on.  Pointers/handles are
/// borrowed: the caller keeps them alive for the evaluator's lifetime.
struct CostContext {
  const cell::Library* library = nullptr;  ///< for "gt" (and sweep re-scoring)
  std::shared_ptr<const ml::Model> delay_model;  ///< for "ml" (in-memory, any family)
  std::shared_ptr<const ml::Model> area_model;
  /// Degradation policy for "serve:" specs (the recipe's `fallback=` key):
  /// "" (fail hard, the historical behavior), "proxy" (degrade to the
  /// structural proxies), or "ml:<dir>" (degrade to local GBDT models).
  /// Rejected for non-serve specs — they have nothing to degrade from.
  std::string serve_fallback;
  /// Value representation for "ml:<dir>" models loaded from .gbdt2
  /// containers (the recipe's `quant=` key).  kFp16/kInt16 require the v2
  /// sibling — text models have no quantized sections to read.
  ml::QuantMode quant = ml::QuantMode::kNone;
};

/// Non-owning shared_ptr view of a caller-owned model — the bridge from
/// by-value model holders (flow::TrainedModels) into CostContext.
[[nodiscard]] inline std::shared_ptr<const ml::Model> borrow_model(const ml::Model& m) {
  return std::shared_ptr<const ml::Model>(std::shared_ptr<const ml::Model>(), &m);
}

/// Resilience policy for RemoteCost (DESIGN.md §10).  Defaults are tuned
/// for a loopback server: fail a request in a few seconds, not minutes.
struct RemoteCostOptions {
  int connect_timeout_ms = 2000;  ///< per-connection-attempt deadline
  int io_timeout_ms = 5000;       ///< per-send / per-response deadline
  int max_retries = 2;            ///< reconnect-and-retry attempts per request
  int backoff_ms = 25;            ///< backoff_ms << attempt between retries
  int breaker_threshold = 3;      ///< consecutive failed evals that open the breaker
  std::string fallback;           ///< "" | "proxy" | "ml:<dir>" (CostContext::serve_fallback)
};

/// Remote evaluator over the serving protocol: features are extracted
/// locally (one fused AnalysisCache pass) and shipped as FEATURES requests,
/// so a hot-reloadable served model guides the search while the wire
/// carries 22 doubles instead of a full AIG.  %.17g formatting round-trips
/// IEEE doubles exactly, so a remote evaluation is bit-identical to a local
/// MlCost over the same model snapshots.  One connection per evaluator.
///
/// Model families: at construction (when connected) the evaluator asks the
/// server each model's family (the FAMILY verb; servers without it are
/// assumed gbdt).  When either served model is a GNN the evaluator runs in
/// graph mode — each evaluation ships the candidate AIG inline (PREDICT)
/// for BOTH models instead of a feature row, since a graph model cannot
/// consume 22 doubles.  Families are resolved once, not per move: a server
/// restart that *changes a model's family* mid-run is out of contract
/// (hot-swaps within a family are the supported path).  If construction
/// starts disconnected (fallback configured), families default to gbdt.
///
/// Failure policy (DESIGN.md §10): each request gets up to 1 + max_retries
/// attempts with deterministic exponential backoff, reconnecting before
/// every retry.  A request that still fails either propagates (no fallback
/// configured — the historical behavior) or degrades that evaluation to the
/// fallback oracle and counts it in degraded_evals().  After
/// breaker_threshold consecutive failed evaluations the circuit breaker
/// opens for the rest of the run: every remaining evaluation goes straight
/// to the fallback without touching the network.  Degraded evaluations are
/// honest values in the *fallback's* units — the degraded_evals() count in
/// the report tells the operator how much of the trajectory to re-score.
///
/// Incremental (cost.hpp protocol): the *feature* side runs through the same
/// persistent FeatureContext as MlCost — delta-repaired analyses, delta
/// extraction — and only the 22 resulting doubles cross the wire.  Unlike
/// MlCost (whose snapshots are pinned for the evaluator's lifetime), the
/// server may hot-reload its model mid-run, so RemoteCost never replays a
/// remembered prediction: every move queries the live server, and only the
/// feature computation is incremental.  The fallback derivations are pure
/// functions of the same feature vector, so degradation never disturbs the
/// bound context.
class RemoteCost final : public CostEvaluator {
 public:
  RemoteCost(const std::string& host, std::uint16_t port, std::string delay_model = "delay",
             std::string area_model = "area", RemoteCostOptions options = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool supports_incremental() const noexcept override { return true; }
  [[nodiscard]] std::uint64_t degraded_evals() const noexcept override { return degraded_; }
  /// True once the circuit breaker latched open (the run is in permanent
  /// degraded mode).
  [[nodiscard]] bool breaker_open() const noexcept { return breaker_open_; }

 protected:
  QualityEval evaluate_impl(const aig::Aig& g) override;
  QualityEval bind_impl(const aig::Aig& g) override;
  QualityEval evaluate_delta_impl(const aig::Aig& g, const aig::DirtyRegion& dirty) override;
  void commit_impl() override { ctx_.commit(); }
  void rollback_impl() override { ctx_.rollback(); }

 private:
  enum class Fallback { kNone, kProxy, kMl };

  [[nodiscard]] QualityEval query(const features::FeatureVector& f);
  [[nodiscard]] QualityEval query_graph(const aig::Aig& g);
  [[nodiscard]] double predict_remote(const std::string& model,
                                      const features::FeatureVector& f);
  [[nodiscard]] double predict_remote_graph(const std::string& model, const aig::Aig& g);
  [[nodiscard]] QualityEval fallback_eval(const features::FeatureVector& f) const;
  void resolve_families();

  std::string host_;
  std::uint16_t port_;
  std::string delay_model_;
  std::string area_model_;
  RemoteCostOptions options_;
  Fallback fallback_kind_ = Fallback::kNone;
  std::shared_ptr<const ml::GbdtModel> fb_delay_;
  std::shared_ptr<const ml::GbdtModel> fb_area_;
  std::unique_ptr<serve::Client> client_;  ///< null while disconnected
  bool graph_mode_ = false;  ///< either served model is family=gnn
  int consecutive_failures_ = 0;
  bool breaker_open_ = false;
  std::uint64_t degraded_ = 0;
  detail::FeatureContext ctx_;
};

/// Builds the evaluator a spec names (grammar above).
[[nodiscard]] std::unique_ptr<CostEvaluator> make_cost(const std::string& spec,
                                                       const CostContext& ctx);

}  // namespace aigml::opt
