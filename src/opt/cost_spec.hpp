#pragma once
// Cost-spec factory — one string names the reward oracle of a flow, so a
// recipe (recipe.hpp) or a CLI flag can swap the paper's Fig. 3 evaluators
// without code changes:
//
//   "proxy"                          ProxyCost (levels / node count)
//   "gt" | "truth" | "ground-truth"  GroundTruthCost (map + STA; needs
//                                    CostContext::library)
//   "ml"                             MlCost over the in-memory models in
//                                    CostContext (delay_model / area_model)
//   "ml:<model-dir>"                 MlCost over <dir>/delay.gbdt and
//                                    <dir>/area.gbdt loaded from disk
//   "serve:<host>:<port>[:<delay-model>[,<area-model>]]"
//                                    RemoteCost — every evaluation is
//                                    answered by a running `aigml serve`
//                                    instance over TCP (model names default
//                                    to "delay" / "area")
//
// Malformed or unsatisfiable specs throw std::invalid_argument with a
// message naming the spec and what is missing.

#include <cstdint>
#include <memory>
#include <string>

#include "opt/cost.hpp"
#include "serve/client.hpp"

namespace aigml::opt {

/// Ambient resources a cost spec may draw on.  Pointers/handles are
/// borrowed: the caller keeps them alive for the evaluator's lifetime.
struct CostContext {
  const cell::Library* library = nullptr;  ///< for "gt" (and sweep re-scoring)
  std::shared_ptr<const ml::GbdtModel> delay_model;  ///< for "ml" (in-memory)
  std::shared_ptr<const ml::GbdtModel> area_model;
};

/// Non-owning shared_ptr view of a caller-owned model — the bridge from
/// by-value model holders (flow::TrainedModels) into CostContext.
[[nodiscard]] inline std::shared_ptr<const ml::GbdtModel> borrow_model(const ml::GbdtModel& m) {
  return std::shared_ptr<const ml::GbdtModel>(std::shared_ptr<const ml::GbdtModel>(), &m);
}

/// Remote evaluator over the serving protocol: features are extracted
/// locally (one fused AnalysisCache pass) and shipped as FEATURES requests,
/// so a hot-reloadable served model guides the search while the wire
/// carries 22 doubles instead of a full AIG.  %.17g formatting round-trips
/// IEEE doubles exactly, so a remote evaluation is bit-identical to a local
/// MlCost over the same model snapshots.  One connection per evaluator; an
/// unreachable or restarting server surfaces as std::runtime_error from
/// evaluate().
///
/// Incremental (cost.hpp protocol): the *feature* side runs through the same
/// persistent FeatureContext as MlCost — delta-repaired analyses, delta
/// extraction — and only the 22 resulting doubles cross the wire.  Unlike
/// MlCost (whose snapshots are pinned for the evaluator's lifetime), the
/// server may hot-reload its model mid-run, so RemoteCost never replays a
/// remembered prediction: every move queries the live server, and only the
/// feature computation is incremental.
class RemoteCost final : public CostEvaluator {
 public:
  RemoteCost(const std::string& host, std::uint16_t port, std::string delay_model = "delay",
             std::string area_model = "area");

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool supports_incremental() const noexcept override { return true; }

 protected:
  QualityEval evaluate_impl(const aig::Aig& g) override;
  QualityEval bind_impl(const aig::Aig& g) override;
  QualityEval evaluate_delta_impl(const aig::Aig& g, const aig::DirtyRegion& dirty) override;
  void commit_impl() override { ctx_.commit(); }
  void rollback_impl() override { ctx_.rollback(); }

 private:
  [[nodiscard]] QualityEval query(const features::FeatureVector& f);

  std::string host_;
  std::uint16_t port_;
  std::string delay_model_;
  std::string area_model_;
  serve::Client client_;
  detail::FeatureContext ctx_;
};

/// Builds the evaluator a spec names (grammar above).
[[nodiscard]] std::unique_ptr<CostEvaluator> make_cost(const std::string& spec,
                                                       const CostContext& ctx);

}  // namespace aigml::opt
