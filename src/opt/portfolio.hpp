#pragma once
// Multi-start portfolio strategy: runs an inner strategy `starts` times
// from deterministically derived seeds and keeps the best result.  The
// randomized searches here are cheap to restart and seed-sensitive (the
// move set is 103 macro scripts), so a small portfolio reliably beats a
// single longer trajectory at equal evaluation budget — and because the
// wall-time / eval-count budgets are *shared* across starts, a portfolio
// recipe can be swapped in anywhere a single-start recipe runs.

#include "opt/strategy.hpp"

namespace aigml::opt {

struct PortfolioParams {
  int starts = 3;
  std::uint64_t seed = 1;  ///< base seed; start i runs with derive_seed(seed, i)
};

class PortfolioStrategy final : public Strategy {
 public:
  /// `inner` supplies the per-start algorithm (its own seed is ignored —
  /// every start runs a reseeded copy).
  PortfolioStrategy(std::shared_ptr<const Strategy> inner, PortfolioParams params);

  [[nodiscard]] std::string name() const override;
  /// Runs the inner strategy once per start.  `stop.max_iterations` is a
  /// *per-start* budget; `max_seconds` and `max_evals` are shared across
  /// the whole portfolio.  The result concatenates the per-start histories;
  /// best/initial come from the best/first start.
  [[nodiscard]] OptResult run(
      const aig::Aig& initial, CostEvaluator& evaluator, const StopCondition& stop,
      Observer* observer = nullptr,
      const transforms::ScriptRegistry& registry = transforms::script_registry()) const override;
  [[nodiscard]] std::unique_ptr<Strategy> reseeded(std::uint64_t seed) const override;

  [[nodiscard]] const PortfolioParams& params() const noexcept { return params_; }
  [[nodiscard]] const Strategy& inner() const noexcept { return *inner_; }

 private:
  std::shared_ptr<const Strategy> inner_;
  PortfolioParams params_;
};

}  // namespace aigml::opt
