#include "opt/portfolio.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "util/timer.hpp"

namespace aigml::opt {

namespace {

/// Presents the whole portfolio as one run to the caller's observer:
/// on_start fires once (with the first start's initial evaluation),
/// on_improvement only when the *global* best improves, and inner
/// on_finish calls are swallowed (the portfolio fires its own with the
/// aggregate result).  on_iteration indices restart per start, mirroring
/// the concatenated history.
class PortfolioObserver final : public Observer {
 public:
  explicit PortfolioObserver(Observer& target) : target_(target) {}

  void on_start(const aig::Aig& initial, const QualityEval& eval, double cost) override {
    best_cost_ = started_ ? std::min(best_cost_, cost) : cost;
    if (!started_) {
      started_ = true;
      target_.on_start(initial, eval, cost);
    }
  }
  void on_iteration(int iteration, const IterationRecord& record) override {
    target_.on_iteration(iteration, record);
  }
  void on_improvement(int iteration, const QualityEval& eval, double cost) override {
    if (cost < best_cost_) {
      best_cost_ = cost;
      target_.on_improvement(iteration, eval, cost);
    }
  }
  void on_finish(const OptResult&) override {}

 private:
  Observer& target_;
  bool started_ = false;
  double best_cost_ = 0.0;
};

}  // namespace

PortfolioStrategy::PortfolioStrategy(std::shared_ptr<const Strategy> inner,
                                     PortfolioParams params)
    : inner_(std::move(inner)), params_(params) {
  if (inner_ == nullptr) throw std::invalid_argument("PortfolioStrategy: null inner strategy");
  if (params_.starts < 1) throw std::invalid_argument("PortfolioStrategy: starts < 1");
}

std::string PortfolioStrategy::name() const { return "portfolio(" + inner_->name() + ")"; }

OptResult PortfolioStrategy::run(const aig::Aig& initial, CostEvaluator& evaluator,
                                 const StopCondition& stop, Observer* observer,
                                 const transforms::ScriptRegistry& registry) const {
  detail::validate_stop(stop, "PortfolioStrategy");
  Timer total_timer;
  OptResult result;
  std::uint64_t evals_used = 0;
  result.stop_reason = StopReason::kIterations;
  std::optional<PortfolioObserver> adapter;
  if (observer != nullptr) adapter.emplace(*observer);
  Observer* const inner_observer = adapter.has_value() ? &*adapter : nullptr;

  for (int start = 0; start < params_.starts; ++start) {
    StopCondition start_stop = stop;
    if (stop.max_seconds > 0.0) {
      const double remaining = stop.max_seconds - total_timer.elapsed_s();
      if (remaining <= 0.0) {
        result.stop_reason = StopReason::kWallTime;
        break;
      }
      start_stop.max_seconds = remaining;
    }
    if (stop.max_evals > 0) {
      if (evals_used >= stop.max_evals) {
        result.stop_reason = StopReason::kEvalBudget;
        break;
      }
      start_stop.max_evals = stop.max_evals - evals_used;
    }

    // Each start re-evaluates the initial AIG (one oracle call): that keeps
    // every start bit-identical to the same strategy run standalone and its
    // accounting self-consistent, at the cost of `starts - 1` redundant
    // evaluations across the portfolio.
    const auto strategy = inner_->reseeded(derive_seed(params_.seed, static_cast<std::uint64_t>(start)));
    OptResult r = strategy->run(initial, evaluator, start_stop, inner_observer, registry);
    evals_used += r.eval_count;

    if (start == 0) {
      result.initial_eval = r.initial_eval;
      result.initial_cost = r.initial_cost;
      result.best = std::move(r.best);
      result.best_eval = r.best_eval;
      result.best_cost = r.best_cost;
    } else if (r.best_cost < result.best_cost) {
      result.best = std::move(r.best);
      result.best_eval = r.best_eval;
      result.best_cost = r.best_cost;
    }
    result.history.insert(result.history.end(), r.history.begin(), r.history.end());
    result.total_transform_seconds += r.total_transform_seconds;
    result.total_eval_seconds += r.total_eval_seconds;
    result.degraded_evals += r.degraded_evals;
    // Speculation counters aggregate like the clocks; the configuration
    // fields are identical across starts (same inner strategy), so copy.
    result.spec.windows = r.spec.windows;
    result.spec.parallel = r.spec.parallel;
    result.spec.rounds += r.spec.rounds;
    result.spec.proposed += r.spec.proposed;
    result.spec.committed += r.spec.committed;
    result.spec.aborted += r.spec.aborted;
    // A start cut short by a shared budget ends the whole portfolio.
    if (r.stop_reason != StopReason::kIterations) {
      result.stop_reason = r.stop_reason;
      break;
    }
  }

  result.eval_count = evals_used;
  result.total_seconds = total_timer.elapsed_s();
  if (observer != nullptr) observer->on_finish(result);
  return result;
}

std::unique_ptr<Strategy> PortfolioStrategy::reseeded(std::uint64_t seed) const {
  PortfolioParams params = params_;
  params.seed = seed;
  return std::make_unique<PortfolioStrategy>(inner_, params);
}

}  // namespace aigml::opt
