#pragma once
// Pareto-front utilities for (delay, area) points — Fig. 5 plots the
// Pareto-optimal curves of the three flows.

#include <cstdint>
#include <span>
#include <vector>

namespace aigml::opt {

struct ParetoPoint {
  double delay = 0.0;
  double area = 0.0;
  std::size_t origin = 0;  ///< caller-defined tag (e.g. sweep-config index)
};

/// True when `a` is at least as good in both objectives and strictly better
/// in one (minimization).
[[nodiscard]] bool dominates(const ParetoPoint& a, const ParetoPoint& b);

/// The non-dominated subset, sorted by ascending delay.  Duplicate
/// coordinates are collapsed to a single representative.
[[nodiscard]] std::vector<ParetoPoint> pareto_front(std::span<const ParetoPoint> points);

/// Area-ish dominated hypervolume indicator w.r.t. a reference point
/// (larger = better front).  Points beyond the reference are clipped out.
[[nodiscard]] double hypervolume(std::span<const ParetoPoint> front, double ref_delay,
                                 double ref_area);

/// Best (smallest) delay on `front` at area <= `area_budget`;
/// +infinity when no point qualifies.  This is the paper's §II-B iso-area
/// delay comparison ("delay ... can be up to 22.7% better").
[[nodiscard]] double delay_at_area(std::span<const ParetoPoint> front, double area_budget);

}  // namespace aigml::opt
