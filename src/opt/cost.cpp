#include "opt/cost.hpp"

#include "aig/analysis.hpp"

namespace aigml::opt {

QualityEval ProxyCost::evaluate_impl(const aig::Aig& g) {
  return QualityEval{static_cast<double>(aig::aig_level(g)),
                     static_cast<double>(g.num_ands())};
}

QualityEval GroundTruthCost::evaluate_impl(const aig::Aig& g) {
  const net::Netlist netlist = map::map_to_cells(g, lib_, map_params_);
  const sta::StaResult result = sta::run_sta(netlist, lib_, sta_params_);
  return QualityEval{result.max_delay_ps, result.total_area_um2};
}

QualityEval MlCost::evaluate_impl(const aig::Aig& g) {
  // extract() runs one fused AnalysisCache traversal (see aig/analysis.hpp).
  const features::FeatureVector f = features::extract(g);
  return QualityEval{delay_model_->predict(f), area_model_->predict(f)};
}

}  // namespace aigml::opt
