#include "opt/cost.hpp"

#include <algorithm>

#include "aig/analysis.hpp"

namespace aigml::opt {

namespace detail {

namespace {

/// Exact structural equality in id space: same records, same outputs.
/// Field-wise compare (never a fingerprint) — a false positive would break
/// the bit-identity contract, so none are possible.
bool same_structure(const std::vector<aig::Node>& nodes, const std::vector<aig::Lit>& outputs,
                    const aig::Aig& g) {
  if (nodes.size() != g.num_nodes() || outputs != g.outputs()) return false;
  for (aig::NodeId id = 0; id < nodes.size(); ++id) {
    if (!(nodes[id] == g.node(id))) return false;
  }
  return true;
}

}  // namespace

features::FeatureVector FeatureContext::bind_features(const aig::Aig& g) {
  memo_.clear();
  active_entry_ = nullptr;
  cache_.rebuild(g);
  return extractor_.bind(g, cache_);
}

FeatureContext::MemoEntry* FeatureContext::find_memo(const aig::Aig& g) {
  for (std::size_t i = 0; i < memo_.size(); ++i) {
    if (!same_structure(memo_[i]->nodes, memo_[i]->outputs, g)) continue;
    // LRU bump: repeats cluster in time, so keep the hit cheap to re-find.
    std::rotate(memo_.begin(), memo_.begin() + static_cast<std::ptrdiff_t>(i),
                memo_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
    return memo_.front().get();
  }
  return nullptr;
}

void FeatureContext::remember(const aig::Aig& g) {
  if (g.num_nodes() > kMemoMaxNodes) return;
  std::unique_ptr<MemoEntry> entry;
  if (memo_.size() >= kMemoEntries) {
    entry = std::move(memo_.back());  // recycle the LRU entry's buffers
    memo_.pop_back();
  } else {
    entry = std::make_unique<MemoEntry>();
  }
  entry->nodes.clear();
  entry->nodes.reserve(g.num_nodes());
  for (aig::NodeId id = 0; id < g.num_nodes(); ++id) entry->nodes.push_back(g.node(id));
  entry->outputs = g.outputs();
  cache_.save(entry->analysis);
  entry->features = extractor_.features();
  entry->global = extractor_.global_stats();
  entry->has_payload = false;
  memo_.insert(memo_.begin(), std::move(entry));
  active_entry_ = memo_.front().get();
}

features::FeatureVector FeatureContext::update(const aig::Aig& g, const aig::DirtyRegion& dirty) {
  active_entry_ = nullptr;
  if (!dirty.empty()) {
    if (MemoEntry* entry = find_memo(g)) {
      active_entry_ = entry;
      cache_.adopt(entry->analysis);
      return extractor_.adopt(entry->features, entry->global);
    }
  }
  cache_.update(g, dirty);
  const features::FeatureVector f = extractor_.update(g, cache_, dirty);
  if (!dirty.empty()) remember(g);
  return f;
}

}  // namespace detail

QualityEval ProxyCost::evaluate_impl(const aig::Aig& g) {
  return QualityEval{static_cast<double>(aig::aig_level(g)),
                     static_cast<double>(g.num_ands())};
}

QualityEval ProxyCost::bind_impl(const aig::Aig& g) {
  cache_.rebuild(g);
  return QualityEval{static_cast<double>(cache_.aig_level()),
                     static_cast<double>(g.num_ands())};
}

QualityEval ProxyCost::evaluate_delta_impl(const aig::Aig& g, const aig::DirtyRegion& dirty) {
  cache_.update(g, dirty);
  return QualityEval{static_cast<double>(cache_.aig_level()),
                     static_cast<double>(g.num_ands())};
}

QualityEval GroundTruthCost::evaluate_impl(const aig::Aig& g) {
  const net::Netlist netlist = map::map_to_cells(g, lib_, map_params_);
  const sta::StaResult result = sta::run_sta(netlist, lib_, sta_params_);
  return QualityEval{result.max_delay_ps, result.total_area_um2};
}

QualityEval MlCost::evaluate_impl(const aig::Aig& g) {
  if (graph_mode_) return predict_graph(g);
  // extract() runs one fused AnalysisCache traversal (see aig/analysis.hpp).
  return predict(features::extract(g));
}

QualityEval MlCost::bind_impl(const aig::Aig& g) {
  if (graph_mode_) {
    return ctx_.bind_graph(g, [this](const aig::Aig& bound) { return predict_graph(bound); });
  }
  return ctx_.bind(g, [this](const features::FeatureVector& f) { return predict(f); });
}

QualityEval MlCost::evaluate_delta_impl(const aig::Aig& g, const aig::DirtyRegion& dirty) {
  if (graph_mode_) {
    return ctx_.evaluate_delta_graph(
        g, dirty, [this](const aig::Aig& candidate) { return predict_graph(candidate); });
  }
  return ctx_.evaluate_delta(
      g, dirty, [this](const features::FeatureVector& f) { return predict(f); });
}

}  // namespace aigml::opt
