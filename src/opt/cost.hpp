#pragma once
// Cost evaluators — the interchangeable "reward calculation" stage of the
// three optimization flows in the paper's Fig. 3:
//
//   ProxyCost        baseline flow: AIG levels ~ delay, node count ~ area
//   GroundTruthCost  ground-truth flow: technology mapping + STA per query
//   MlCost           ML flow: Table II features + GBDT inference per query
//   RemoteCost       served-model flow over TCP (cost_spec.hpp)
//
// Evaluators are usually built from a cost-spec string via opt::make_cost
// (cost_spec.hpp) so recipes and CLI flags can swap them declaratively.
// evaluate() returns raw (delay, area) in evaluator-specific units; the
// strategies normalize against the initial evaluation so the cost weights
// mean the same thing across flows.  Every evaluator tracks its cumulative
// evaluation wall-time — the quantity Fig. 2 and Table IV report; runs
// report deltas of these clocks (see strategy.hpp's accounting contract).
//
// Incremental protocol (DESIGN.md §8)
// -----------------------------------
// Evaluators whose cost is a function of structural analyses (ProxyCost,
// MlCost, RemoteCost) additionally support *incremental* move evaluation:
//
//   bind(g)                  from-scratch evaluation that also establishes a
//                            persistent evaluation context for `g`
//   evaluate_delta(g, d)     speculative evaluation of a candidate that
//                            differs from the bound graph by dirty region
//                            `d` (aig::diff_region) — O(dirty cone), not
//                            O(full AIG)
//   commit_move()            the candidate was accepted: it becomes the
//                            bound graph
//   rollback_move()          the candidate was rejected: the context reverts
//                            to the bound graph exactly
//
// Hard contract: bind/evaluate_delta return values bit-identical to
// evaluate() on the same graph — search trajectories must not depend on
// which path ran (enforced by tests/test_incremental.cpp and bench_eval).
// Exactly one speculative move may be in flight per evaluator, and the
// context is single-threaded like the evaluator itself.  Evaluators without
// an incremental implementation (GroundTruthCost: mapping + STA is not
// structurally decomposable here) report supports_incremental() == false
// and fall back to evaluate() everywhere.
//
// All four entry points lap the same stopwatch, so accounting (eval_seconds
// / eval_count) is path-independent.

#include <memory>
#include <stdexcept>
#include <string>

#include "aig/aig.hpp"
#include "aig/analysis.hpp"
#include "aig/dirty.hpp"
#include "celllib/library.hpp"
#include "features/features.hpp"
#include "mapper/mapper.hpp"
#include "ml/gbdt.hpp"
#include "ml/model.hpp"
#include "sta/sta.hpp"
#include "util/timer.hpp"

namespace aigml::opt {

struct QualityEval {
  double delay = 0.0;
  double area = 0.0;
};

class CostEvaluator {
 public:
  virtual ~CostEvaluator() = default;

  /// Estimates (delay, area) of `g` in this evaluator's units.
  QualityEval evaluate(const aig::Aig& g) {
    ScopedLap lap(watch_);
    return evaluate_impl(g);
  }

  /// True when bind/evaluate_delta are cheaper than evaluate() (see the
  /// header comment's incremental protocol).
  [[nodiscard]] virtual bool supports_incremental() const noexcept { return false; }

  /// From-scratch evaluation that also (re)binds the incremental context.
  /// Defaults to evaluate() for evaluators without one.
  QualityEval bind(const aig::Aig& g) {
    ScopedLap lap(watch_);
    return bind_impl(g);
  }

  /// Speculative evaluation of `g`, which differs from the bound graph by
  /// `dirty`.  Must be resolved by commit_move() or rollback_move() before
  /// the next bind/evaluate_delta.
  QualityEval evaluate_delta(const aig::Aig& g, const aig::DirtyRegion& dirty) {
    ScopedLap lap(watch_);
    return evaluate_delta_impl(g, dirty);
  }

  void commit_move() { commit_impl(); }
  void rollback_move() { rollback_impl(); }

  /// True when fork_worker() can mint independent same-function evaluators —
  /// what the speculative windowed engine (spec/executor.hpp) needs to score
  /// window proposals concurrently.  Evaluators tied to exclusive external
  /// state (RemoteCost's single connection, LiveMlCost's hot-reload context)
  /// keep the default false and reject windows=N at run start.
  [[nodiscard]] virtual bool supports_speculation() const noexcept { return false; }

  /// A fresh evaluator computing bit-identically the same cost function as
  /// this one, with its own incremental context and its own accounting
  /// clocks (workers start at zero; runs aggregate worker totals into
  /// OptResult).  Shared immutable state (models, cell libraries) may be
  /// referenced, so forks of one evaluator can evaluate concurrently.
  [[nodiscard]] virtual std::unique_ptr<CostEvaluator> fork_worker() const {
    throw std::logic_error(name() + ": fork_worker unsupported");
  }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Cumulative seconds spent inside evaluate()/bind()/evaluate_delta().
  [[nodiscard]] double eval_seconds() const noexcept { return watch_.total_s(); }
  [[nodiscard]] std::uint64_t eval_count() const noexcept { return watch_.laps(); }
  void reset_accounting() noexcept { watch_.reset(); }

  /// Evaluations answered in degraded mode (a fallback oracle instead of the
  /// configured one).  Nonzero only for evaluators that can degrade
  /// (RemoteCost with fallback=); monotone like eval_count, so runs report
  /// the same entry/exit delta (strategy.hpp accounting contract).
  [[nodiscard]] virtual std::uint64_t degraded_evals() const noexcept { return 0; }

 protected:
  virtual QualityEval evaluate_impl(const aig::Aig& g) = 0;
  virtual QualityEval bind_impl(const aig::Aig& g) { return evaluate_impl(g); }
  virtual QualityEval evaluate_delta_impl(const aig::Aig& g, const aig::DirtyRegion& /*dirty*/) {
    return evaluate_impl(g);
  }
  virtual void commit_impl() {}
  virtual void rollback_impl() {}

 private:
  Stopwatch watch_;
};

namespace detail {

/// The persistent evaluation context shared by the feature-based evaluators
/// (MlCost, RemoteCost): a dirty-region-repairable AnalysisCache paired with
/// a delta feature extractor, driven in lockstep — plus the evaluation memo.
///
/// The memo exploits how annealing walks actually behave: the 103 scripts
/// are deterministic, so a converged search keeps revisiting a handful of
/// structures (measured ~85% of SA evaluations on the bench workload are
/// either no-ops or exact repeats of a recently seen graph).  Each non-no-op
/// evaluation remembers (graph structure, analysis snapshot, features); a
/// candidate that *exactly* matches a remembered structure — field-for-field
/// node compare, never a hash, so bit-identity cannot be broken by a
/// collision — restores the saved state in one array copy instead of
/// re-sweeping.  Entries are LRU-rotated, capped at kMemoEntries, and
/// disabled above kMemoMaxNodes nodes to bound memory.
class FeatureContext {
 public:
  /// From-scratch bind deriving the evaluator's value from the features
  /// (e.g. GBDT inference); clears the memo (new run / new lineage).
  /// `derive` is FeatureVector -> QualityEval.
  template <typename Derive>
  QualityEval bind(const aig::Aig& g, Derive&& derive) {
    last_q_ = derive(bind_features(g));
    last_q_prev_ = last_q_;
    derived_valid_ = derived_valid_prev_ = true;
    return last_q_;
  }

  /// Graph-input twin of bind(): `derive` is (const aig::Aig&) -> QualityEval
  /// — for models that consume the graph itself (family=gnn) rather than the
  /// flat feature vector.  The feature/analysis context still binds (it keys
  /// the memo and powers the dirty-region bookkeeping); only the derivation
  /// input differs.
  template <typename DeriveGraph>
  QualityEval bind_graph(const aig::Aig& g, DeriveGraph&& derive) {
    bind_features(g);
    last_q_ = derive(g);
    last_q_prev_ = last_q_;
    derived_valid_ = derived_valid_prev_ = true;
    return last_q_;
  }

  /// Speculative per-move evaluation: no-op short-circuit, memo restore, or
  /// dirty-region repair (analysis.hpp), in that order of preference.
  ///
  /// With `reuse_derived` (the default), `derive` runs only when the feature
  /// vector actually moved AND no memo entry already carries the derived
  /// value — identical features (or an exact structure repeat) imply an
  /// identical deterministic derivation, so skipping it cannot break
  /// bit-identity.  Pass `reuse_derived = false` when the derivation is NOT
  /// a pure function of the features over the whole run — RemoteCost must:
  /// the server may hot-reload its model mid-search, and replaying a stale
  /// prediction would silently mix old- and new-model scores.  The feature
  /// side (analysis repair, delta extraction, the memo's analysis
  /// snapshots) is model-independent and stays incremental either way.
  template <typename Derive>
  QualityEval evaluate_delta(const aig::Aig& g, const aig::DirtyRegion& dirty, Derive&& derive,
                             bool reuse_derived = true) {
    const features::FeatureVector f = update(g, dirty);
    last_q_prev_ = last_q_;
    derived_valid_prev_ = derived_valid_;
    if (!reuse_derived) {
      last_q_ = derive(f);
      derived_valid_ = true;
      return last_q_;
    }
    if (const QualityEval* memoized = payload()) {
      last_q_ = *memoized;
    } else {
      if (extractor_.last_update_changed()) last_q_ = derive(f);
      set_payload(last_q_);
    }
    derived_valid_ = true;
    return last_q_;
  }

  /// Graph-input twin of evaluate_delta().  The feature-path's
  /// features-unchanged short-circuit is UNSOUND here (equal feature vectors
  /// do not imply equal structure, and a graph model sees the structure), so
  /// the reuse ladder is strictly structural:
  ///   1. exact-structure memo hit  -> replay the remembered derived value;
  ///   2. dirty.empty()             -> the candidate IS the bound graph
  ///                                   (diff_region found no change), keep
  ///                                   the current value — unless a model
  ///                                   swap invalidated it (derived_valid_);
  ///   3. otherwise                 -> derive(g) and remember.
  /// `reuse_derived = false` (RemoteCost) additionally forces derive(g) on
  /// every structural change or invalidation, replaying nothing.
  template <typename DeriveGraph>
  QualityEval evaluate_delta_graph(const aig::Aig& g, const aig::DirtyRegion& dirty,
                                   DeriveGraph&& derive, bool reuse_derived = true) {
    update(g, dirty);
    last_q_prev_ = last_q_;
    derived_valid_prev_ = derived_valid_;
    if (dirty.empty() && derived_valid_) return last_q_;
    if (reuse_derived) {
      if (const QualityEval* memoized = payload()) {
        last_q_ = *memoized;
        derived_valid_ = true;
        return last_q_;
      }
    }
    last_q_ = derive(g);
    derived_valid_ = true;
    if (reuse_derived) set_payload(last_q_);
    return last_q_;
  }

  void commit() {
    cache_.commit();
    extractor_.commit();
  }
  void rollback() {
    cache_.rollback();
    extractor_.rollback();
    last_q_ = last_q_prev_;
    derived_valid_ = derived_valid_prev_;
  }

  /// Model-swap hook (serve::LiveMlCost): the derivation function itself
  /// changed identity (a hot-reload installed a new model), so every
  /// remembered *derived* value is stale while the feature side — analysis
  /// snapshots, feature vectors, the memo's structural keys — stays valid.
  /// Clears all memo payloads and re-derives the bound graph's value under
  /// the new derivation, so a subsequent no-op move cannot short-circuit to
  /// an old-generation prediction.  Must be called between moves (no
  /// speculative update pending) on a bound context.
  template <typename Derive>
  void refresh_derived(Derive&& derive) {
    for (auto& entry : memo_) entry->has_payload = false;
    last_q_ = derive(extractor_.features());
    last_q_prev_ = last_q_;
    derived_valid_ = derived_valid_prev_ = true;
  }

  /// Graph-mode model-swap hook: same staleness event as refresh_derived(),
  /// but the new derivation needs the *graph*, which the context does not
  /// retain — so instead of eagerly re-deriving, mark every remembered
  /// derived value stale (memo payloads + the bound value).  The next
  /// evaluate_delta_graph() re-derives even when diff_region finds no change
  /// (rung 2 above checks derived_valid_), so a no-op move cannot
  /// short-circuit to an old-generation prediction.  Must be called between
  /// moves on a bound context.
  void invalidate_derived() noexcept {
    for (auto& entry : memo_) entry->has_payload = false;
    derived_valid_ = derived_valid_prev_ = false;
  }

  static constexpr std::size_t kMemoEntries = 8;
  static constexpr std::size_t kMemoMaxNodes = 100000;  ///< ~45 MB memo ceiling

 private:
  struct MemoEntry {
    std::vector<aig::Node> nodes;
    std::vector<aig::Lit> outputs;
    aig::AnalysisSnapshot analysis;
    features::FeatureVector features{};
    features::detail::FanoutStats global;
    QualityEval payload;  ///< the evaluator's derived value (skips inference
    bool has_payload = false;  ///< / serve round trips on repeats)
  };
  features::FeatureVector bind_features(const aig::Aig& g);
  features::FeatureVector update(const aig::Aig& g, const aig::DirtyRegion& dirty);
  [[nodiscard]] MemoEntry* find_memo(const aig::Aig& g);
  void remember(const aig::Aig& g);
  [[nodiscard]] const QualityEval* payload() const noexcept {
    return active_entry_ != nullptr && active_entry_->has_payload ? &active_entry_->payload
                                                                  : nullptr;
  }
  void set_payload(const QualityEval& q) noexcept {
    if (active_entry_ == nullptr) return;
    active_entry_->payload = q;
    active_entry_->has_payload = true;
  }

  aig::AnalysisCache cache_;
  features::IncrementalExtractor extractor_;
  std::vector<std::unique_ptr<MemoEntry>> memo_;  ///< MRU first
  MemoEntry* active_entry_ = nullptr;  ///< entry hit/remembered by last update()
  QualityEval last_q_;       ///< derived value for the context's features
  QualityEval last_q_prev_;  ///< pre-update value, restored on rollback
  bool derived_valid_ = true;       ///< false after invalidate_derived() until re-derived
  bool derived_valid_prev_ = true;  ///< pre-update flag, restored on rollback
};

}  // namespace detail

/// Baseline proxies: delay := AIG level count, area := AND count.
/// Incrementally, the level comes from a forward-only AnalysisCache repaired
/// per move instead of a fresh whole-graph level sweep.  Expectation check:
/// proxy evaluation is a single cheap sweep to begin with, so the
/// incremental path is roughly a wash per eval (bench_eval reports ~1.0-1.3x)
/// — it exists for protocol uniformity, and because the diff/bookkeeping
/// overhead is charged to transform time where it is noise next to the
/// rewrite passes.  The big wins are the feature-based evaluators below.
class ProxyCost final : public CostEvaluator {
 public:
  [[nodiscard]] std::string name() const override { return "proxy"; }
  [[nodiscard]] bool supports_incremental() const noexcept override { return true; }
  [[nodiscard]] bool supports_speculation() const noexcept override { return true; }
  [[nodiscard]] std::unique_ptr<CostEvaluator> fork_worker() const override {
    return std::make_unique<ProxyCost>();
  }

 protected:
  QualityEval evaluate_impl(const aig::Aig& g) override;
  QualityEval bind_impl(const aig::Aig& g) override;
  QualityEval evaluate_delta_impl(const aig::Aig& g, const aig::DirtyRegion& dirty) override;
  void commit_impl() override { cache_.commit(); }
  void rollback_impl() override { cache_.rollback(); }

 private:
  aig::AnalysisCache cache_{aig::AnalysisScope::kForwardOnly};
};

/// Exact post-mapping metrics: map to cells, run STA.  Not incremental —
/// technology mapping re-derives cuts and cell choices globally, so there is
/// no per-move delta to exploit (it is the expensive oracle the ML flow
/// exists to avoid calling in the loop).
class GroundTruthCost final : public CostEvaluator {
 public:
  explicit GroundTruthCost(const cell::Library& lib, map::MapParams map_params = {},
                           sta::StaParams sta_params = {})
      : lib_(lib), map_params_(map_params), sta_params_(sta_params) {}

  [[nodiscard]] std::string name() const override { return "ground-truth"; }
  /// map_to_cells / run_sta are pure functions of (graph, library, params),
  /// so forks sharing the library can run concurrently.
  [[nodiscard]] bool supports_speculation() const noexcept override { return true; }
  [[nodiscard]] std::unique_ptr<CostEvaluator> fork_worker() const override {
    return std::make_unique<GroundTruthCost>(lib_, map_params_, sta_params_);
  }

 protected:
  QualityEval evaluate_impl(const aig::Aig& g) override;

 private:
  const cell::Library& lib_;
  map::MapParams map_params_;
  sta::StaParams sta_params_;
};

/// ML predictions for delay and area — family-agnostic over ml::Model.
/// A gbdt pair runs feature extraction + forest inference; when either model
/// needs_graph() (family=gnn) the evaluator switches to the FeatureContext's
/// graph path and derives via Model::predict(const Aig&) for both models (a
/// gbdt partner in a mixed pair extracts its own features — correctness over
/// a micro-optimization nobody configures).
/// Two ownership modes: borrow models trained/owned by the caller, or hold
/// shared immutable snapshots handed out by serve::ModelRegistry (see
/// serve::make_ml_cost) — the snapshot stays valid for this evaluator's
/// lifetime even if the registry hot-swaps a newer version underneath.
/// Incrementally, features come from the persistent FeatureContext (delta
/// analysis repair + delta extraction); inference cost is size-independent
/// and paid on both paths.  The graph path reuses derived values only on
/// exact-structure evidence (memo hit or empty diff), never on feature
/// equality — see FeatureContext::evaluate_delta_graph.
class MlCost final : public CostEvaluator {
 public:
  MlCost(const ml::Model& delay_model, const ml::Model& area_model)
      : delay_model_(&delay_model), area_model_(&area_model),
        graph_mode_(delay_model.needs_graph() || area_model.needs_graph()) {}

  MlCost(std::shared_ptr<const ml::Model> delay_model,
         std::shared_ptr<const ml::Model> area_model)
      : delay_snapshot_(std::move(delay_model)), area_snapshot_(std::move(area_model)),
        delay_model_(delay_snapshot_.get()), area_model_(area_snapshot_.get()) {
    if (delay_model_ == nullptr || area_model_ == nullptr) {
      throw std::invalid_argument("MlCost: null model snapshot");
    }
    graph_mode_ = delay_model_->needs_graph() || area_model_->needs_graph();
  }

  [[nodiscard]] std::string name() const override { return "ml"; }
  [[nodiscard]] bool supports_incremental() const noexcept override { return true; }
  /// Model::predict is const and lock-free for both families, so forks
  /// sharing the model (pointers in borrowing mode, refcounted snapshots
  /// otherwise) are safe.
  [[nodiscard]] bool supports_speculation() const noexcept override { return true; }
  [[nodiscard]] std::unique_ptr<CostEvaluator> fork_worker() const override {
    if (delay_snapshot_ != nullptr) return std::make_unique<MlCost>(delay_snapshot_, area_snapshot_);
    return std::make_unique<MlCost>(*delay_model_, *area_model_);
  }

 protected:
  QualityEval evaluate_impl(const aig::Aig& g) override;
  QualityEval bind_impl(const aig::Aig& g) override;
  QualityEval evaluate_delta_impl(const aig::Aig& g, const aig::DirtyRegion& dirty) override;
  void commit_impl() override { ctx_.commit(); }
  void rollback_impl() override { ctx_.rollback(); }

 private:
  [[nodiscard]] QualityEval predict(const features::FeatureVector& f) const {
    return QualityEval{delay_model_->predict(std::span<const double>(f.data(), f.size())),
                       area_model_->predict(std::span<const double>(f.data(), f.size()))};
  }
  [[nodiscard]] QualityEval predict_graph(const aig::Aig& g) const {
    return QualityEval{delay_model_->predict(g), area_model_->predict(g)};
  }

  std::shared_ptr<const ml::Model> delay_snapshot_;  ///< keepalives (may be null
  std::shared_ptr<const ml::Model> area_snapshot_;   ///< in borrowing mode)
  const ml::Model* delay_model_;
  const ml::Model* area_model_;
  bool graph_mode_ = false;  ///< either model needs_graph()
  detail::FeatureContext ctx_;
};

}  // namespace aigml::opt
