#pragma once
// Cost evaluators — the interchangeable "reward calculation" stage of the
// three optimization flows in the paper's Fig. 3:
//
//   ProxyCost        baseline flow: AIG levels ~ delay, node count ~ area
//   GroundTruthCost  ground-truth flow: technology mapping + STA per query
//   MlCost           ML flow: Table II features + GBDT inference per query
//   RemoteCost       served-model flow over TCP (cost_spec.hpp)
//
// Evaluators are usually built from a cost-spec string via opt::make_cost
// (cost_spec.hpp) so recipes and CLI flags can swap them declaratively.
// evaluate() returns raw (delay, area) in evaluator-specific units; the
// strategies normalize against the initial evaluation so the cost weights
// mean the same thing across flows.  Every evaluator tracks its cumulative
// evaluation wall-time — the quantity Fig. 2 and Table IV report; runs
// report deltas of these clocks (see strategy.hpp's accounting contract).

#include <memory>
#include <stdexcept>
#include <string>

#include "aig/aig.hpp"
#include "celllib/library.hpp"
#include "features/features.hpp"
#include "mapper/mapper.hpp"
#include "ml/gbdt.hpp"
#include "sta/sta.hpp"
#include "util/timer.hpp"

namespace aigml::opt {

struct QualityEval {
  double delay = 0.0;
  double area = 0.0;
};

class CostEvaluator {
 public:
  virtual ~CostEvaluator() = default;

  /// Estimates (delay, area) of `g` in this evaluator's units.
  QualityEval evaluate(const aig::Aig& g) {
    ScopedLap lap(watch_);
    return evaluate_impl(g);
  }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Cumulative seconds spent inside evaluate().
  [[nodiscard]] double eval_seconds() const noexcept { return watch_.total_s(); }
  [[nodiscard]] std::uint64_t eval_count() const noexcept { return watch_.laps(); }
  void reset_accounting() noexcept { watch_.reset(); }

 protected:
  virtual QualityEval evaluate_impl(const aig::Aig& g) = 0;

 private:
  Stopwatch watch_;
};

/// Baseline proxies: delay := AIG level count, area := AND count.
class ProxyCost final : public CostEvaluator {
 public:
  [[nodiscard]] std::string name() const override { return "proxy"; }

 protected:
  QualityEval evaluate_impl(const aig::Aig& g) override;
};

/// Exact post-mapping metrics: map to cells, run STA.
class GroundTruthCost final : public CostEvaluator {
 public:
  explicit GroundTruthCost(const cell::Library& lib, map::MapParams map_params = {},
                           sta::StaParams sta_params = {})
      : lib_(lib), map_params_(map_params), sta_params_(sta_params) {}

  [[nodiscard]] std::string name() const override { return "ground-truth"; }

 protected:
  QualityEval evaluate_impl(const aig::Aig& g) override;

 private:
  const cell::Library& lib_;
  map::MapParams map_params_;
  sta::StaParams sta_params_;
};

/// ML predictions: feature extraction + GBDT inference for delay and area.
/// Two ownership modes: borrow models trained/owned by the caller, or hold
/// shared immutable snapshots handed out by serve::ModelRegistry (see
/// serve::make_ml_cost) — the snapshot stays valid for this evaluator's
/// lifetime even if the registry hot-swaps a newer version underneath.
class MlCost final : public CostEvaluator {
 public:
  MlCost(const ml::GbdtModel& delay_model, const ml::GbdtModel& area_model)
      : delay_model_(&delay_model), area_model_(&area_model) {}

  MlCost(std::shared_ptr<const ml::GbdtModel> delay_model,
         std::shared_ptr<const ml::GbdtModel> area_model)
      : delay_snapshot_(std::move(delay_model)), area_snapshot_(std::move(area_model)),
        delay_model_(delay_snapshot_.get()), area_model_(area_snapshot_.get()) {
    if (delay_model_ == nullptr || area_model_ == nullptr) {
      throw std::invalid_argument("MlCost: null model snapshot");
    }
  }

  [[nodiscard]] std::string name() const override { return "ml"; }

 protected:
  QualityEval evaluate_impl(const aig::Aig& g) override;

 private:
  std::shared_ptr<const ml::GbdtModel> delay_snapshot_;  ///< keepalives (may be null
  std::shared_ptr<const ml::GbdtModel> area_snapshot_;   ///< in borrowing mode)
  const ml::GbdtModel* delay_model_;
  const ml::GbdtModel* area_model_;
};

}  // namespace aigml::opt
