#include "opt/cost_spec.hpp"

#include <filesystem>
#include <stdexcept>

namespace aigml::opt {

namespace {

[[noreturn]] void fail(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("cost spec '" + spec + "': " + why);
}

std::uint16_t parse_port(const std::string& spec, const std::string& text) {
  std::size_t used = 0;
  int port = 0;
  try {
    port = std::stoi(text, &used);
  } catch (const std::exception&) {
    fail(spec, "'" + text + "' is not a port number");
  }
  if (used != text.size() || port < 1 || port > 65535) {
    fail(spec, "port '" + text + "' out of range 1..65535");
  }
  return static_cast<std::uint16_t>(port);
}

std::unique_ptr<CostEvaluator> make_ml_from_dir(const std::string& spec,
                                                const std::string& dir) {
  namespace fs = std::filesystem;
  const fs::path delay_path = fs::path(dir) / "delay.gbdt";
  const fs::path area_path = fs::path(dir) / "area.gbdt";
  if (!fs::exists(delay_path) || !fs::exists(area_path)) {
    fail(spec, "expected " + delay_path.string() + " and " + area_path.string() +
                   " (train them with `aigml train`)");
  }
  auto delay = std::make_shared<const ml::GbdtModel>(ml::GbdtModel::load(delay_path));
  auto area = std::make_shared<const ml::GbdtModel>(ml::GbdtModel::load(area_path));
  return std::make_unique<MlCost>(std::move(delay), std::move(area));
}

std::unique_ptr<CostEvaluator> make_remote(const std::string& spec, const std::string& rest) {
  // rest = <host>:<port>[:<delay-model>[,<area-model>]]
  const std::size_t host_end = rest.find(':');
  if (host_end == std::string::npos || host_end == 0) {
    fail(spec, "expected serve:<host>:<port>[:<delay-model>[,<area-model>]]");
  }
  const std::string host = rest.substr(0, host_end);
  const std::size_t port_end = rest.find(':', host_end + 1);
  const std::string port_text = rest.substr(
      host_end + 1, port_end == std::string::npos ? std::string::npos : port_end - host_end - 1);
  if (port_text.empty()) fail(spec, "missing port after host '" + host + "'");
  const std::uint16_t port = parse_port(spec, port_text);

  std::string delay_model = "delay";
  std::string area_model = "area";
  if (port_end != std::string::npos) {
    const std::string models = rest.substr(port_end + 1);
    const std::size_t comma = models.find(',');
    delay_model = models.substr(0, comma);
    if (comma != std::string::npos) area_model = models.substr(comma + 1);
    if (delay_model.empty() || area_model.empty()) {
      fail(spec, "empty model name (expected <delay-model>[,<area-model>])");
    }
  }
  try {
    return std::make_unique<RemoteCost>(host, port, delay_model, area_model);
  } catch (const std::exception& e) {
    fail(spec, std::string("cannot reach server (") + e.what() +
                   "); start one with `aigml serve --models DIR --port " + port_text + "`");
  }
}

}  // namespace

RemoteCost::RemoteCost(const std::string& host, std::uint16_t port, std::string delay_model,
                       std::string area_model)
    : host_(host), port_(port), delay_model_(std::move(delay_model)),
      area_model_(std::move(area_model)), client_(host, port) {}

std::string RemoteCost::name() const { return "serve:" + host_ + ":" + std::to_string(port_); }

QualityEval RemoteCost::evaluate_impl(const aig::Aig& g) {
  return query(features::extract(g));
}

QualityEval RemoteCost::bind_impl(const aig::Aig& g) {
  return ctx_.bind(g, [this](const features::FeatureVector& f) { return query(f); });
}

QualityEval RemoteCost::evaluate_delta_impl(const aig::Aig& g, const aig::DirtyRegion& dirty) {
  // reuse_derived = false: the server may hot-reload its model mid-run, so
  // every move must query the live server — replaying a memoized answer
  // would pin rejected/repeated moves to the old model while novel moves
  // see the new one.  Feature extraction stays incremental (the features
  // are model-independent), and %.17g wire formatting round-trips exactly,
  // so each query is still bit-identical to a from-scratch evaluate().
  return ctx_.evaluate_delta(
      g, dirty, [this](const features::FeatureVector& f) { return query(f); },
      /*reuse_derived=*/false);
}

QualityEval RemoteCost::query(const features::FeatureVector& f) {
  return QualityEval{client_.predict_features(delay_model_, f),
                     client_.predict_features(area_model_, f)};
}

std::unique_ptr<CostEvaluator> make_cost(const std::string& spec, const CostContext& ctx) {
  if (spec == "proxy") return std::make_unique<ProxyCost>();
  if (spec == "gt" || spec == "truth" || spec == "ground-truth") {
    if (ctx.library == nullptr) {
      fail(spec, "needs a cell library (set CostContext::library)");
    }
    return std::make_unique<GroundTruthCost>(*ctx.library);
  }
  if (spec == "ml") {
    if (ctx.delay_model == nullptr || ctx.area_model == nullptr) {
      fail(spec, "needs in-memory models (set CostContext::delay_model / area_model, "
                 "or use ml:<model-dir>)");
    }
    return std::make_unique<MlCost>(ctx.delay_model, ctx.area_model);
  }
  if (spec.rfind("ml:", 0) == 0) {
    const std::string dir = spec.substr(3);
    if (dir.empty()) fail(spec, "empty model directory");
    return make_ml_from_dir(spec, dir);
  }
  if (spec.rfind("serve:", 0) == 0) return make_remote(spec, spec.substr(6));
  fail(spec, "unknown evaluator (expected proxy | gt | ml | ml:<model-dir> | "
             "serve:<host>:<port>[:<delay-model>[,<area-model>]])");
}

}  // namespace aigml::opt
