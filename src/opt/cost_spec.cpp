#include "opt/cost_spec.hpp"

#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include "ml/gnn.hpp"

namespace aigml::opt {

namespace {

[[noreturn]] void fail(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("cost spec '" + spec + "': " + why);
}

std::uint16_t parse_port(const std::string& spec, const std::string& text) {
  std::size_t used = 0;
  int port = 0;
  try {
    port = std::stoi(text, &used);
  } catch (const std::exception&) {
    fail(spec, "'" + text + "' is not a port number");
  }
  if (used != text.size() || port < 1 || port > 65535) {
    fail(spec, "port '" + text + "' out of range 1..65535");
  }
  return static_cast<std::uint16_t>(port);
}

/// Checks for <dir>/<name>.gbdt2-or-.gbdt for delay and area, failing with
/// the spec's context when missing.  Shared by "ml:<dir>" specs and
/// "ml:<dir>" fallbacks.
void require_model_dir(const std::string& spec, const std::string& dir) {
  namespace fs = std::filesystem;
  for (const char* name : {"delay", "area"}) {
    const fs::path v2_path = fs::path(dir) / (std::string(name) + ".gbdt2");
    const fs::path text_path = fs::path(dir) / (std::string(name) + ".gbdt");
    if (!fs::exists(v2_path) && !fs::exists(text_path)) {
      fail(spec, "expected " + v2_path.string() + " or " + text_path.string() +
                     " (train them with `aigml train`, convert with `aigml convert`)");
    }
  }
}

/// Loads <dir>/<name>, preferring the .gbdt2 mmap container over the text
/// file; a quantized QuantMode requires the v2 container.
std::shared_ptr<const ml::GbdtModel> load_model_from_dir(const std::string& spec,
                                                         const std::string& dir,
                                                         const char* name,
                                                         ml::QuantMode quant) {
  namespace fs = std::filesystem;
  const fs::path v2_path = fs::path(dir) / (std::string(name) + ".gbdt2");
  if (fs::exists(v2_path)) {
    return std::make_shared<const ml::GbdtModel>(ml::GbdtModel::load_v2(v2_path, quant));
  }
  if (quant != ml::QuantMode::kNone) {
    fail(spec, std::string("quant=") + ml::to_string(quant) + " needs " + v2_path.string() +
                   " (text models have no quantized sections; run `aigml convert`)");
  }
  return std::make_shared<const ml::GbdtModel>(ml::GbdtModel::load(fs::path(dir) / (std::string(name) + ".gbdt")));
}

std::unique_ptr<CostEvaluator> make_ml_from_dir(const std::string& spec, const std::string& dir,
                                                ml::QuantMode quant) {
  require_model_dir(spec, dir);
  auto delay = load_model_from_dir(spec, dir, "delay", quant);
  auto area = load_model_from_dir(spec, dir, "area", quant);
  return std::make_unique<MlCost>(std::move(delay), std::move(area));
}

std::unique_ptr<CostEvaluator> make_gnn_from_dir(const std::string& spec,
                                                 const std::string& rest) {
  // rest = <model-dir>[:<delay-name>[,<area-name>]]
  namespace fs = std::filesystem;
  const std::size_t dir_end = rest.find(':');
  const std::string dir = rest.substr(0, dir_end);
  if (dir.empty()) fail(spec, "empty model directory");
  std::string delay_name = "delay";
  std::string area_name = "area";
  if (dir_end != std::string::npos) {
    const std::string names = rest.substr(dir_end + 1);
    const std::size_t comma = names.find(',');
    delay_name = names.substr(0, comma);
    if (comma != std::string::npos) area_name = names.substr(comma + 1);
    if (delay_name.empty() || area_name.empty()) {
      fail(spec, "empty model name (expected <delay-name>[,<area-name>])");
    }
  }
  std::shared_ptr<const ml::GnnModel> models[2];
  const std::string* names[2] = {&delay_name, &area_name};
  for (int i = 0; i < 2; ++i) {
    const fs::path path = fs::path(dir) / (*names[i] + ml::kGnnExtension);
    if (!fs::exists(path)) {
      fail(spec, "expected " + path.string() + " (train one with `aigml train --model gnn`)");
    }
    try {
      models[i] = std::make_shared<const ml::GnnModel>(ml::GnnModel::load(path));
    } catch (const std::exception& e) {
      fail(spec, e.what());
    }
  }
  return std::make_unique<MlCost>(std::move(models[0]), std::move(models[1]));
}

std::unique_ptr<CostEvaluator> make_remote(const std::string& spec, const std::string& rest,
                                           const CostContext& ctx) {
  // rest = <host>:<port>[:<delay-model>[,<area-model>]]
  const std::size_t host_end = rest.find(':');
  if (host_end == std::string::npos || host_end == 0) {
    fail(spec, "expected serve:<host>:<port>[:<delay-model>[,<area-model>]]");
  }
  const std::string host = rest.substr(0, host_end);
  const std::size_t port_end = rest.find(':', host_end + 1);
  const std::string port_text = rest.substr(
      host_end + 1, port_end == std::string::npos ? std::string::npos : port_end - host_end - 1);
  if (port_text.empty()) fail(spec, "missing port after host '" + host + "'");
  const std::uint16_t port = parse_port(spec, port_text);

  std::string delay_model = "delay";
  std::string area_model = "area";
  if (port_end != std::string::npos) {
    const std::string models = rest.substr(port_end + 1);
    const std::size_t comma = models.find(',');
    delay_model = models.substr(0, comma);
    if (comma != std::string::npos) area_model = models.substr(comma + 1);
    if (delay_model.empty() || area_model.empty()) {
      fail(spec, "empty model name (expected <delay-model>[,<area-model>])");
    }
  }

  RemoteCostOptions options;
  options.fallback = ctx.serve_fallback;
  if (!options.fallback.empty() && options.fallback != "proxy") {
    if (options.fallback.rfind("ml:", 0) != 0 || options.fallback.size() == 3) {
      fail(spec, "fallback '" + options.fallback + "': expected proxy | ml:<model-dir>");
    }
    require_model_dir(spec, options.fallback.substr(3));
  }

  try {
    return std::make_unique<RemoteCost>(host, port, delay_model, area_model,
                                        std::move(options));
  } catch (const std::exception& e) {
    fail(spec, std::string("cannot reach server (") + e.what() +
                   "); start one with `aigml serve --models DIR --port " + port_text + "`");
  }
}

}  // namespace

RemoteCost::RemoteCost(const std::string& host, std::uint16_t port, std::string delay_model,
                       std::string area_model, RemoteCostOptions options)
    : host_(host), port_(port), delay_model_(std::move(delay_model)),
      area_model_(std::move(area_model)), options_(std::move(options)) {
  namespace fs = std::filesystem;
  if (options_.fallback == "proxy") {
    fallback_kind_ = Fallback::kProxy;
  } else if (options_.fallback.rfind("ml:", 0) == 0) {
    // Fallback models ride the same .gbdt2-preferred path as ml:<dir>
    // specs, always at quant=none (degraded evaluations should match what
    // a local MlCost over the same files would have produced).
    const std::string dir = options_.fallback.substr(3);
    fb_delay_ = load_model_from_dir(options_.fallback, dir, "delay", ml::QuantMode::kNone);
    fb_area_ = load_model_from_dir(options_.fallback, dir, "area", ml::QuantMode::kNone);
    fallback_kind_ = Fallback::kMl;
  } else if (!options_.fallback.empty()) {
    throw std::invalid_argument("RemoteCost: fallback '" + options_.fallback +
                                "': expected proxy | ml:<model-dir>");
  }
  // Fail fast on an unreachable server when there is nothing to degrade to;
  // with a fallback configured, start disconnected and let the per-request
  // retry path (or eventually the breaker) take over.
  try {
    client_ = std::make_unique<serve::Client>(
        host_, port_,
        serve::ClientOptions{options_.connect_timeout_ms, options_.io_timeout_ms});
  } catch (const std::exception&) {
    if (fallback_kind_ == Fallback::kNone) throw;
  }
  resolve_families();
}

void RemoteCost::resolve_families() {
  // Disconnected (fallback-configured) construction keeps the gbdt default:
  // feature rows are the degraded path's native input anyway, and a server
  // that comes up later serving a GNN under these names is a configuration
  // the operator opted into reconnect-blind (header contract).
  if (client_ == nullptr) return;
  for (const std::string& model : {delay_model_, area_model_}) {
    try {
      if (client_->family(model) == "gnn") graph_mode_ = true;
    } catch (const std::exception&) {
      // Pre-FAMILY server or unknown model: assume gbdt; a wrong guess
      // surfaces as an actionable ERR on the first FEATURES request.
    }
  }
}

std::string RemoteCost::name() const { return "serve:" + host_ + ":" + std::to_string(port_); }

QualityEval RemoteCost::evaluate_impl(const aig::Aig& g) {
  if (graph_mode_) return query_graph(g);
  return query(features::extract(g));
}

QualityEval RemoteCost::bind_impl(const aig::Aig& g) {
  if (graph_mode_) {
    return ctx_.bind_graph(g, [this](const aig::Aig& bound) { return query_graph(bound); });
  }
  return ctx_.bind(g, [this](const features::FeatureVector& f) { return query(f); });
}

QualityEval RemoteCost::evaluate_delta_impl(const aig::Aig& g, const aig::DirtyRegion& dirty) {
  // reuse_derived = false: the server may hot-reload its model mid-run, so
  // every move must query the live server — replaying a memoized answer
  // would pin rejected/repeated moves to the old model while novel moves
  // see the new one.  Feature extraction stays incremental (the features
  // are model-independent), and %.17g wire formatting round-trips exactly,
  // so each query is still bit-identical to a from-scratch evaluate().
  // Graph mode rides the same rule via evaluate_delta_graph: the context's
  // structural bookkeeping stays incremental, every move ships the AIG.
  if (graph_mode_) {
    return ctx_.evaluate_delta_graph(
        g, dirty, [this](const aig::Aig& candidate) { return query_graph(candidate); },
        /*reuse_derived=*/false);
  }
  return ctx_.evaluate_delta(
      g, dirty, [this](const features::FeatureVector& f) { return query(f); },
      /*reuse_derived=*/false);
}

double RemoteCost::predict_remote(const std::string& model, const features::FeatureVector& f) {
  for (int attempt = 0;; ++attempt) {
    try {
      if (client_ == nullptr) {
        client_ = std::make_unique<serve::Client>(
            host_, port_,
            serve::ClientOptions{options_.connect_timeout_ms, options_.io_timeout_ms});
      }
      return client_->predict_features(model, f);
    } catch (const std::exception&) {
      // The connection's state is unknown after any failure (bytes may be in
      // flight); drop it and reconnect on the next attempt.
      client_.reset();
      if (attempt >= options_.max_retries) throw;
      // Deterministic exponential backoff — no jitter, so a seeded chaos run
      // replays the same schedule.
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<long>(options_.backoff_ms) << attempt));
    }
  }
}

double RemoteCost::predict_remote_graph(const std::string& model, const aig::Aig& g) {
  for (int attempt = 0;; ++attempt) {
    try {
      if (client_ == nullptr) {
        client_ = std::make_unique<serve::Client>(
            host_, port_,
            serve::ClientOptions{options_.connect_timeout_ms, options_.io_timeout_ms});
      }
      return client_->predict(model, g);
    } catch (const std::exception&) {
      client_.reset();
      if (attempt >= options_.max_retries) throw;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<long>(options_.backoff_ms) << attempt));
    }
  }
}

QualityEval RemoteCost::fallback_eval(const features::FeatureVector& f) const {
  if (fallback_kind_ == Fallback::kMl) {
    return QualityEval{fb_delay_->predict(f), fb_area_->predict(f)};
  }
  // Structural proxies straight off the feature vector: f[1] is aig_level,
  // f[0] is num_ands (features.cpp order) — exactly ProxyCost's evaluation,
  // with no extra analysis pass.
  return QualityEval{f[1], f[0]};
}

QualityEval RemoteCost::query(const features::FeatureVector& f) {
  if (!breaker_open_) {
    try {
      const double delay = predict_remote(delay_model_, f);
      const double area = predict_remote(area_model_, f);
      consecutive_failures_ = 0;
      return QualityEval{delay, area};
    } catch (const std::exception&) {
      if (fallback_kind_ == Fallback::kNone) throw;
      if (++consecutive_failures_ >= options_.breaker_threshold) {
        // Latch open for the rest of the run: a server that failed this many
        // whole evaluations (each already retried with reconnects) is down,
        // and per-eval timeouts would otherwise stall every remaining move.
        breaker_open_ = true;
      }
    }
  }
  ++degraded_;
  return fallback_eval(f);
}

QualityEval RemoteCost::query_graph(const aig::Aig& g) {
  if (!breaker_open_) {
    try {
      // PREDICT works for both families server-side, so graph mode ships the
      // AIG for BOTH models — one wire dialect per evaluator, and a gbdt
      // partner's features are extracted where the model lives.
      const double delay = predict_remote_graph(delay_model_, g);
      const double area = predict_remote_graph(area_model_, g);
      consecutive_failures_ = 0;
      return QualityEval{delay, area};
    } catch (const std::exception&) {
      if (fallback_kind_ == Fallback::kNone) throw;
      if (++consecutive_failures_ >= options_.breaker_threshold) breaker_open_ = true;
    }
  }
  // Degraded graph evaluations drop to the feature-based fallback oracles —
  // honest values in the fallback's units, exactly like the feature path.
  ++degraded_;
  return fallback_eval(features::extract(g));
}

std::unique_ptr<CostEvaluator> make_cost(const std::string& spec, const CostContext& ctx) {
  if (spec.rfind("serve:", 0) != 0 && !ctx.serve_fallback.empty()) {
    fail(spec, "fallback '" + ctx.serve_fallback +
                   "' only applies to serve:<host>:<port> specs");
  }
  if (ctx.quant != ml::QuantMode::kNone && spec.rfind("ml:", 0) != 0) {
    fail(spec, std::string("quant=") + ml::to_string(ctx.quant) +
                   " only applies to ml:<model-dir> specs (models loaded from .gbdt2)");
  }
  if (spec == "proxy") return std::make_unique<ProxyCost>();
  if (spec == "gt" || spec == "truth" || spec == "ground-truth") {
    if (ctx.library == nullptr) {
      fail(spec, "needs a cell library (set CostContext::library)");
    }
    return std::make_unique<GroundTruthCost>(*ctx.library);
  }
  if (spec == "ml") {
    if (ctx.delay_model == nullptr || ctx.area_model == nullptr) {
      fail(spec, "needs in-memory models (set CostContext::delay_model / area_model, "
                 "or use ml:<model-dir>)");
    }
    return std::make_unique<MlCost>(ctx.delay_model, ctx.area_model);
  }
  if (spec.rfind("ml:", 0) == 0) {
    const std::string dir = spec.substr(3);
    if (dir.empty()) fail(spec, "empty model directory");
    return make_ml_from_dir(spec, dir, ctx.quant);
  }
  if (spec.rfind("gnn:", 0) == 0) return make_gnn_from_dir(spec, spec.substr(4));
  if (spec.rfind("serve:", 0) == 0) return make_remote(spec, spec.substr(6), ctx);
  fail(spec, "unknown evaluator (expected proxy | gt | ml | ml:<model-dir> | "
             "gnn:<model-dir>[:<delay>[,<area>]] | "
             "serve:<host>:<port>[:<delay-model>[,<area-model>]])");
}

}  // namespace aigml::opt
