#pragma once
// Strategy — the uniform interface every optimization algorithm implements
// (the paper fixes *one* search paradigm and swaps the reward oracle; this
// header fixes one search *interface* and lets both the algorithm and the
// oracle vary independently).
//
//   OptResult      shared result shape (best AIG, history, timing breakdown)
//   StopCondition  unified budgets: iteration count, wall-time, eval count
//   Observer       per-iteration progress callbacks (logging, live plots)
//   Strategy       virtual run(initial, evaluator, stop, observer)
//
// Implementations: SaStrategy (sa.hpp), GreedyStrategy (greedy.hpp),
// PortfolioStrategy (portfolio.hpp).  A recipe string selects and
// configures one of them declaratively (recipe.hpp); opt::run executes it.
//
// Accounting contract: every OptResult reports *run-local* deltas of the
// evaluator's cumulative clocks (eval_seconds / eval_count snapshots taken
// at entry), so sharing one CostEvaluator across consecutive runs never
// bleeds one run's evaluation time into the next run's report.
//
// Evaluation contract: the shared search_loop runs moves through the
// incremental protocol (cost.hpp, DESIGN.md §8) whenever the evaluator
// supports it — traced transforms report dirty regions, accept/reject maps
// to commit/rollback.  Incremental and from-scratch evaluation are
// bit-identical by contract, so strategies never observe the difference.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "opt/cost.hpp"
#include "transforms/scripts.hpp"

namespace aigml::opt {

/// Unified optimization budgets.  A field of 0 means "unlimited"; at least
/// one budget must be set or Strategy::run throws std::invalid_argument.
/// Budgets are checked before each iteration: max_evals counts evaluator
/// calls attributed to the run (the initial evaluation included), so a
/// strategy never *starts* an iteration beyond the budget but may finish
/// the one in flight.
struct StopCondition {
  int max_iterations = 0;
  double max_seconds = 0.0;
  std::uint64_t max_evals = 0;
};

enum class StopReason { kIterations, kWallTime, kEvalBudget };

[[nodiscard]] const char* to_string(StopReason reason);

struct IterationRecord {
  std::size_t script_index = 0;
  double delay = 0.0;  ///< evaluator units
  double area = 0.0;
  double cost = 0.0;  ///< normalized weighted cost
  bool accepted = false;
  double transform_seconds = 0.0;
  double eval_seconds = 0.0;
};

/// Speculation counters for the windowed parallel move engine (spec/,
/// DESIGN.md §12).  All zero when the classic one-move loop ran
/// (windows == 0).  `proposed` counts window proposals (== the history
/// records the engine contributed); an *abort* is a proposal the accept rule
/// took but the committer could not apply — its dirty region overlapped an
/// earlier commit in the same round, or a spec.commit_abort fault fired.
struct SpecStats {
  int windows = 0;  ///< configured window count (0 = engine off)
  bool parallel = false;
  std::uint64_t rounds = 0;
  std::uint64_t proposed = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;

  [[nodiscard]] double abort_rate() const {
    const std::uint64_t decided = committed + aborted;
    return decided == 0 ? 0.0 : static_cast<double>(aborted) / static_cast<double>(decided);
  }
};

/// The universal result shape of every strategy (SaResult is an alias kept
/// for source compatibility with the pre-Strategy API).
struct OptResult {
  aig::Aig best;             ///< lowest-cost AIG seen
  QualityEval best_eval;     ///< its evaluator-units (delay, area)
  double best_cost = 0.0;
  QualityEval initial_eval;  ///< normalization basis
  double initial_cost = 0.0;  ///< normalized cost of `initial_eval` (the search's baseline)
  std::vector<IterationRecord> history;
  double total_transform_seconds = 0.0;
  double total_eval_seconds = 0.0;  ///< run-local evaluator time, initial eval included
  double total_seconds = 0.0;
  std::uint64_t eval_count = 0;  ///< evaluator calls attributed to this run
  /// Of eval_count, how many were answered by a degraded-mode fallback
  /// oracle (cost.hpp degraded_evals; nonzero only for evaluators that can
  /// degrade, e.g. RemoteCost with fallback=).  Degraded values are honest
  /// but in the fallback's units — a nonzero count tells the operator how
  /// much of the trajectory to re-score.
  std::uint64_t degraded_evals = 0;
  StopReason stop_reason = StopReason::kIterations;
  /// Windowed-speculation counters (all zero unless the run used windows=N).
  SpecStats spec;

  [[nodiscard]] double seconds_per_iteration() const {
    return history.empty() ? 0.0 : total_seconds / static_cast<double>(history.size());
  }
  [[nodiscard]] std::size_t accepted_moves() const {
    std::size_t n = 0;
    for (const auto& r : history) n += r.accepted;
    return n;
  }
};

/// Progress callbacks.  All hooks default to no-ops; observers are borrowed
/// (never owned) and called synchronously from the strategy's thread.
class Observer {
 public:
  virtual ~Observer() = default;
  virtual void on_start(const aig::Aig& /*initial*/, const QualityEval& /*initial_eval*/,
                        double /*initial_cost*/) {}
  /// Fires after each candidate's evaluation and *before* the accept
  /// decision — the one hook that sees the visited graph itself, which is
  /// what active-learning harvesting (learn::LabelHarvester) rides on.
  /// `candidate` is borrowed for the duration of the call only.
  virtual void on_candidate(int /*iteration*/, const aig::Aig& /*candidate*/,
                            const QualityEval& /*eval*/) {}
  virtual void on_iteration(int /*iteration*/, const IterationRecord& /*record*/) {}
  /// Fires whenever a new global best is recorded.
  virtual void on_improvement(int /*iteration*/, const QualityEval& /*best_eval*/,
                              double /*best_cost*/) {}
  virtual void on_finish(const OptResult& /*result*/) {}
};

class Strategy {
 public:
  virtual ~Strategy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Optimizes `initial` under `evaluator` until a budget in `stop` expires.
  /// `observer` may be nullptr.
  [[nodiscard]] virtual OptResult run(
      const aig::Aig& initial, CostEvaluator& evaluator, const StopCondition& stop,
      Observer* observer = nullptr,
      const transforms::ScriptRegistry& registry = transforms::script_registry()) const = 0;

  /// A copy of this strategy with its RNG seed replaced — how multi-start
  /// wrappers (PortfolioStrategy) derive independent repetitions.
  [[nodiscard]] virtual std::unique_ptr<Strategy> reseeded(std::uint64_t seed) const = 0;
};

/// Deterministically derives the seed for repetition `index` of a
/// multi-start run from the base `seed`.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t index);

namespace detail {

/// Shared single-trajectory engine behind SaStrategy and GreedyStrategy:
/// draw a random script, apply it, evaluate, accept or revert, track the
/// best.  `accept` decides (candidate_cost, current_cost, rng) -> bool and
/// `post_iteration` runs after each move (e.g. temperature decay).  The RNG
/// draw order is exactly the pre-Strategy one, so fixed seeds reproduce
/// legacy trajectories bit-identically.
///
/// When `use_incremental` is set and the evaluator supports it, moves run
/// through the incremental protocol (cost.hpp): scripts are applied traced,
/// the evaluator repairs a persistent context from each move's dirty region,
/// and accept/reject becomes commit/rollback.  Evaluations are bit-identical
/// either way (the §8 contract), so the knob changes wall-time only — it
/// exists for benchmarking and as an escape hatch, and defaults to on.
///
/// When `spec_windows > 0` the loop is replaced by the speculative windowed
/// move engine (spec/executor.hpp, DESIGN.md §12): per round, one transform
/// is proposed for each of up to `spec_windows` disjoint windows, evaluated
/// against per-window forked evaluators (`spec_parallel` runs the proposals
/// on the process thread pool), and non-conflicting accepted proposals are
/// committed in window order.  Trajectories are bit-identical for any thread
/// count and for spec_parallel on/off; they are a *different* (batched)
/// trajectory than spec_windows == 0.
OptResult search_loop(const aig::Aig& initial, CostEvaluator& evaluator,
                      const StopCondition& stop, Observer* observer,
                      const transforms::ScriptRegistry& registry, double weight_delay,
                      double weight_area, std::uint64_t seed, bool use_incremental,
                      int spec_windows, bool spec_parallel,
                      const std::function<bool(double, double, Rng&)>& accept,
                      const std::function<void()>& post_iteration);

void validate_stop(const StopCondition& stop, const char* who);

}  // namespace detail

}  // namespace aigml::opt
