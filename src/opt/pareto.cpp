#include "opt/pareto.hpp"

#include <algorithm>
#include <limits>

namespace aigml::opt {

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  return a.delay <= b.delay && a.area <= b.area && (a.delay < b.delay || a.area < b.area);
}

std::vector<ParetoPoint> pareto_front(std::span<const ParetoPoint> points) {
  std::vector<ParetoPoint> sorted(points.begin(), points.end());
  // Sort by delay, then area; a forward sweep keeps points with strictly
  // decreasing area.
  std::sort(sorted.begin(), sorted.end(), [](const ParetoPoint& a, const ParetoPoint& b) {
    if (a.delay != b.delay) return a.delay < b.delay;
    return a.area < b.area;
  });
  std::vector<ParetoPoint> front;
  double best_area = std::numeric_limits<double>::infinity();
  for (const ParetoPoint& p : sorted) {
    if (p.area < best_area) {
      // Collapse exact duplicates.
      if (!front.empty() && front.back().delay == p.delay && front.back().area == p.area) continue;
      front.push_back(p);
      best_area = p.area;
    }
  }
  return front;
}

double hypervolume(std::span<const ParetoPoint> front, double ref_delay, double ref_area) {
  // Standard 2D dominated hypervolume for minimization: the front (sorted by
  // ascending delay, thus descending area) partitions the dominated region
  // into disjoint rectangles [delay_i, delay_{i+1}) x [area_i, ref_area).
  std::vector<ParetoPoint> inside;
  for (const ParetoPoint& p : pareto_front(front)) {
    if (p.delay < ref_delay && p.area < ref_area) inside.push_back(p);
  }
  double volume = 0.0;
  for (std::size_t i = 0; i < inside.size(); ++i) {
    const double next_delay = i + 1 < inside.size() ? inside[i + 1].delay : ref_delay;
    volume += (next_delay - inside[i].delay) * (ref_area - inside[i].area);
  }
  return volume;
}

double delay_at_area(std::span<const ParetoPoint> front, double area_budget) {
  double best = std::numeric_limits<double>::infinity();
  for (const ParetoPoint& p : front) {
    if (p.area <= area_budget) best = std::min(best, p.delay);
  }
  return best;
}

}  // namespace aigml::opt
