#pragma once
// Simulated-annealing logic optimization (the paper's optimization paradigm,
// §IV: "experiments are conducted based on [the] simulated annealing (SA)
// paradigm").
//
// State: the current AIG.  Move: apply a uniformly random script from the
// 103-script registry.  Cost: w_d * delay/delay_0 + w_a * area/area_0 with
// (delay, area) supplied by a pluggable CostEvaluator — swapping the
// evaluator switches between the baseline / ground-truth / ML flows without
// touching the search.  Cost-increasing moves are accepted with probability
// exp(-dCost / T); T decays geometrically.
//
// Per-iteration wall-time is split into transform time and evaluation time,
// which is exactly the decomposition reported in Fig. 2 and Table IV.

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "opt/cost.hpp"
#include "transforms/scripts.hpp"
#include "util/rng.hpp"

namespace aigml::opt {

struct SaParams {
  int iterations = 200;
  double initial_temperature = 0.08;  ///< in normalized-cost units
  double decay = 0.97;                ///< T *= decay each iteration (the swept knob)
  double weight_delay = 1.0;          ///< the other swept knob (with weight_area)
  double weight_area = 0.5;
  std::uint64_t seed = 1;
};

struct IterationRecord {
  std::size_t script_index = 0;
  double delay = 0.0;     ///< evaluator units
  double area = 0.0;
  double cost = 0.0;      ///< normalized weighted cost
  bool accepted = false;
  double transform_seconds = 0.0;
  double eval_seconds = 0.0;
};

struct SaResult {
  aig::Aig best;                ///< lowest-cost AIG seen
  QualityEval best_eval;        ///< its evaluator-units (delay, area)
  double best_cost = 0.0;
  QualityEval initial_eval;     ///< normalization basis
  std::vector<IterationRecord> history;
  double total_transform_seconds = 0.0;
  double total_eval_seconds = 0.0;
  double total_seconds = 0.0;

  [[nodiscard]] double seconds_per_iteration() const {
    return history.empty() ? 0.0 : total_seconds / static_cast<double>(history.size());
  }
  [[nodiscard]] std::size_t accepted_moves() const {
    std::size_t n = 0;
    for (const auto& r : history) n += r.accepted;
    return n;
  }
};

/// Runs SA from `initial` using `evaluator` for cost queries.
[[nodiscard]] SaResult simulated_annealing(
    const aig::Aig& initial, CostEvaluator& evaluator, const SaParams& params,
    const transforms::ScriptRegistry& registry = transforms::script_registry());

}  // namespace aigml::opt
