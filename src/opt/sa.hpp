#pragma once
// Simulated-annealing logic optimization (the paper's optimization paradigm,
// §IV: "experiments are conducted based on [the] simulated annealing (SA)
// paradigm").
//
// State: the current AIG.  Move: apply a uniformly random script from the
// 103-script registry.  Cost: w_d * delay/delay_0 + w_a * area/area_0 with
// (delay, area) supplied by a pluggable CostEvaluator — swapping the
// evaluator switches between the baseline / ground-truth / ML / remote
// flows without touching the search.  Cost-increasing moves are accepted
// with probability exp(-dCost / T); T decays geometrically.
//
// SaStrategy is the opt::Strategy implementation; the simulated_annealing
// free function is the pre-Strategy entry point, kept as a thin wrapper
// (bit-identical trajectories for a fixed seed).

#include <cstdint>

#include "opt/strategy.hpp"

namespace aigml::opt {

struct SaParams {
  int iterations = 200;
  double initial_temperature = 0.08;  ///< in normalized-cost units
  double decay = 0.97;                ///< T *= decay each iteration (the swept knob)
  double weight_delay = 1.0;          ///< the other swept knob (with weight_area)
  double weight_area = 0.5;
  std::uint64_t seed = 1;
  /// Use the incremental move-evaluation protocol when the evaluator
  /// supports it (bit-identical trajectories either way; see DESIGN.md §8).
  bool incremental = true;
  /// Speculative windowed move engine (DESIGN.md §12): 0 keeps the classic
  /// one-move-at-a-time loop; N >= 1 proposes one move per disjoint window
  /// per round (recipe key windows=N).  Requires an evaluator with
  /// supports_speculation().
  int windows = 0;
  /// Evaluate window proposals concurrently on the thread pool (--threads;
  /// recipe key par=1).  Trajectories are bit-identical to parallel == false
  /// at any thread count.  Only meaningful with windows >= 1.
  bool parallel = false;
};

/// Pre-Strategy result name; OptResult is the universal shape.
using SaResult = OptResult;

class SaStrategy final : public Strategy {
 public:
  explicit SaStrategy(SaParams params);

  [[nodiscard]] std::string name() const override { return "sa"; }
  [[nodiscard]] OptResult run(
      const aig::Aig& initial, CostEvaluator& evaluator, const StopCondition& stop,
      Observer* observer = nullptr,
      const transforms::ScriptRegistry& registry = transforms::script_registry()) const override;
  [[nodiscard]] std::unique_ptr<Strategy> reseeded(std::uint64_t seed) const override;

  [[nodiscard]] const SaParams& params() const noexcept { return params_; }

 private:
  SaParams params_;
};

/// Runs SA from `initial` using `evaluator` for cost queries
/// (`params.iterations` is the only budget; see SaStrategy for wall-time /
/// eval-count budgets).
[[nodiscard]] SaResult simulated_annealing(
    const aig::Aig& initial, CostEvaluator& evaluator, const SaParams& params,
    const transforms::ScriptRegistry& registry = transforms::script_registry());

}  // namespace aigml::opt
