#pragma once
// Greedy / first-improvement descent — the deterministic counterpart the
// paper contrasts SA against ("compared to deterministic algorithms, SA
// allows ... hill-climbing", §IV).  Included both as a practical fast
// optimizer and as the subject of the SA-vs-greedy ablation bench.
//
// GreedyStrategy is the opt::Strategy implementation; the greedy_descent
// free function is the pre-Strategy entry point, kept as a thin wrapper
// (bit-identical trajectories for a fixed seed).

#include "opt/strategy.hpp"

namespace aigml::opt {

struct GreedyParams {
  int iterations = 200;
  /// Accept only strictly improving moves when 0; otherwise allow
  /// cost increases up to this fraction of the current cost (plateau
  /// tolerance).
  double tolerance = 0.0;
  double weight_delay = 1.0;
  double weight_area = 0.5;
  std::uint64_t seed = 1;
  /// Use the incremental move-evaluation protocol when the evaluator
  /// supports it (bit-identical trajectories either way; see DESIGN.md §8).
  bool incremental = true;
  /// Speculative windowed move engine (DESIGN.md §12): 0 keeps the classic
  /// one-move-at-a-time loop; N >= 1 proposes one move per disjoint window
  /// per round (recipe key windows=N).  Requires an evaluator with
  /// supports_speculation().
  int windows = 0;
  /// Evaluate window proposals concurrently on the thread pool (--threads;
  /// recipe key par=1).  Trajectories are bit-identical to parallel == false
  /// at any thread count.  Only meaningful with windows >= 1.
  bool parallel = false;
};

class GreedyStrategy final : public Strategy {
 public:
  explicit GreedyStrategy(GreedyParams params);

  [[nodiscard]] std::string name() const override { return "greedy"; }
  [[nodiscard]] OptResult run(
      const aig::Aig& initial, CostEvaluator& evaluator, const StopCondition& stop,
      Observer* observer = nullptr,
      const transforms::ScriptRegistry& registry = transforms::script_registry()) const override;
  [[nodiscard]] std::unique_ptr<Strategy> reseeded(std::uint64_t seed) const override;

  [[nodiscard]] const GreedyParams& params() const noexcept { return params_; }

 private:
  GreedyParams params_;
};

/// Runs randomized first-improvement descent: at each step a random script
/// is applied and kept only if the (normalized, weighted) cost does not
/// worsen beyond the tolerance.  Returns the same result shape as SA for
/// easy comparison.
[[nodiscard]] OptResult greedy_descent(
    const aig::Aig& initial, CostEvaluator& evaluator, const GreedyParams& params,
    const transforms::ScriptRegistry& registry = transforms::script_registry());

}  // namespace aigml::opt
