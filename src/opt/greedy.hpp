#pragma once
// Greedy / first-improvement descent — the deterministic counterpart the
// paper contrasts SA against ("compared to deterministic algorithms, SA
// allows ... hill-climbing", §IV).  Included both as a practical fast
// optimizer and as the subject of the SA-vs-greedy ablation bench.

#include "opt/cost.hpp"
#include "opt/sa.hpp"

namespace aigml::opt {

struct GreedyParams {
  int iterations = 200;
  /// Accept only strictly improving moves when 0; otherwise allow
  /// cost increases up to this fraction of the current cost (plateau
  /// tolerance).
  double tolerance = 0.0;
  double weight_delay = 1.0;
  double weight_area = 0.5;
  std::uint64_t seed = 1;
};

/// Runs randomized first-improvement descent: at each step a random script
/// is applied and kept only if the (normalized, weighted) cost does not
/// worsen beyond the tolerance.  Returns the same result shape as SA for
/// easy comparison.
[[nodiscard]] SaResult greedy_descent(
    const aig::Aig& initial, CostEvaluator& evaluator, const GreedyParams& params,
    const transforms::ScriptRegistry& registry = transforms::script_registry());

}  // namespace aigml::opt
