#include "opt/recipe.hpp"

#include <cstdio>
#include <stdexcept>

#include "opt/greedy.hpp"
#include "opt/portfolio.hpp"
#include "opt/sa.hpp"

namespace aigml::opt {

namespace {

[[noreturn]] void fail(const std::string& why) {
  throw std::invalid_argument("recipe: " + why);
}

double parse_double(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(value, &used);
  } catch (const std::exception&) {
    fail(key + "=" + value + ": not a number");
  }
  if (used != value.size()) fail(key + "=" + value + ": trailing garbage after number");
  return v;
}

int parse_int(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  int v = 0;
  try {
    v = std::stoi(value, &used);
  } catch (const std::exception&) {
    fail(key + "=" + value + ": not an integer");
  }
  if (used != value.size()) fail(key + "=" + value + ": trailing garbage after integer");
  return v;
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(value, &used);
  } catch (const std::exception&) {
    fail(key + "=" + value + ": not a non-negative integer");
  }
  if (used != value.size()) fail(key + "=" + value + ": trailing garbage after integer");
  return static_cast<std::uint64_t>(v);
}

void check_strategy_name(const std::string& key, const std::string& value, bool allow_portfolio) {
  if (value == "sa" || value == "greedy") return;
  if (allow_portfolio && value == "portfolio") return;
  fail(key + "=" + value + ": expected sa | greedy" +
       (allow_portfolio ? " | portfolio" : std::string()));
}

/// Shortest decimal form that parses back to exactly `v`.
std::string format_number(double v) {
  char buf[64];
  for (const int precision : {6, 15, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::stod(buf) == v) break;
  }
  return buf;
}

}  // namespace

Recipe Recipe::parse(const std::string& text) {
  Recipe recipe;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t end = std::min(text.find(';', pos), text.size());
    const std::string segment = text.substr(pos, end - pos);
    pos = end + 1;
    if (segment.empty()) continue;
    const std::size_t eq = segment.find('=');
    if (eq == std::string::npos || eq == 0) {
      fail("segment '" + segment + "' is not key=value");
    }
    const std::string key = segment.substr(0, eq);
    const std::string value = segment.substr(eq + 1);
    if (value.empty()) fail(key + "=: empty value");

    if (key == "strategy") {
      check_strategy_name(key, value, /*allow_portfolio=*/true);
      recipe.strategy = value;
    } else if (key == "iters") {
      recipe.iterations = parse_int(key, value);
      if (recipe.iterations < 1) fail("iters=" + value + ": must be >= 1");
    } else if (key == "max_seconds") {
      recipe.max_seconds = parse_double(key, value);
      if (recipe.max_seconds < 0.0) fail("max_seconds=" + value + ": must be >= 0");
    } else if (key == "max_evals") {
      recipe.max_evals = parse_u64(key, value);
    } else if (key == "wd") {
      recipe.weight_delay = parse_double(key, value);
    } else if (key == "wa") {
      recipe.weight_area = parse_double(key, value);
    } else if (key == "seed") {
      recipe.seed = parse_u64(key, value);
    } else if (key == "temp") {
      recipe.initial_temperature = parse_double(key, value);
      if (recipe.initial_temperature < 0.0) fail("temp=" + value + ": must be >= 0");
    } else if (key == "decay") {
      recipe.decay = parse_double(key, value);
      if (recipe.decay <= 0.0 || recipe.decay > 1.0) {
        fail("decay=" + value + ": must be in (0, 1]");
      }
    } else if (key == "tol") {
      recipe.tolerance = parse_double(key, value);
      if (recipe.tolerance < 0.0) fail("tol=" + value + ": must be >= 0");
    } else if (key == "starts") {
      recipe.starts = parse_int(key, value);
      if (recipe.starts < 1) fail("starts=" + value + ": must be >= 1");
    } else if (key == "inner") {
      check_strategy_name(key, value, /*allow_portfolio=*/false);
      recipe.inner = value;
    } else if (key == "cost") {
      recipe.cost = value;
    } else if (key == "quant") {
      if (value != "none" && value != "fp16" && value != "int16") {
        fail("quant=" + value + ": expected none | fp16 | int16");
      }
      recipe.quant = value;
    } else if (key == "fallback") {
      recipe.fallback = value;
    } else if (key == "inc") {
      if (value == "0" || value == "1") {
        recipe.incremental = value == "1";
      } else {
        fail("inc=" + value + ": expected 0 or 1");
      }
    } else if (key == "windows") {
      recipe.spec_windows = parse_int(key, value);
      if (recipe.spec_windows < 0) fail("windows=" + value + ": must be >= 0");
    } else if (key == "par") {
      if (value == "0" || value == "1") {
        recipe.spec_parallel = value == "1";
      } else {
        fail("par=" + value + ": expected 0 or 1");
      }
    } else if (key == "learn") {
      if (value == "0" || value == "1") {
        recipe.learn = value == "1";
      } else {
        fail("learn=" + value + ": expected 0 or 1");
      }
    } else if (key == "learn_budget") {
      recipe.learn_budget = parse_int(key, value);
      if (recipe.learn_budget < 1) fail("learn_budget=" + value + ": must be >= 1");
    } else if (key == "learn_dir") {
      recipe.learn_dir = value;
    } else {
      fail("unknown key '" + key +
           "' (known: strategy iters max_seconds max_evals wd wa seed temp decay tol "
           "starts inner cost quant fallback inc windows par learn learn_budget learn_dir)");
    }
  }
  if (recipe.spec_parallel && recipe.spec_windows == 0) {
    fail("par=1 requires windows=N (N >= 1)");
  }
  return recipe;
}

std::string Recipe::to_string() const {
  // Emit a knob when the selected strategy reads it OR it was set away from
  // its default — parse() accepts every knob regardless of strategy, so the
  // round-trip contract (parse(to_string()) == *this) must not drop a
  // carried value just because the current strategy ignores it.
  static const Recipe defaults;
  std::string out = "strategy=" + strategy + ";iters=" + std::to_string(iterations);
  if (max_seconds > 0.0) out += ";max_seconds=" + format_number(max_seconds);
  if (max_evals > 0) out += ";max_evals=" + std::to_string(max_evals);
  const bool sa_knobs = strategy == "sa" || (strategy == "portfolio" && inner == "sa");
  const bool greedy_knobs = strategy == "greedy" || (strategy == "portfolio" && inner == "greedy");
  if (sa_knobs || initial_temperature != defaults.initial_temperature) {
    out += ";temp=" + format_number(initial_temperature);
  }
  if (sa_knobs || decay != defaults.decay) out += ";decay=" + format_number(decay);
  if (greedy_knobs || tolerance != defaults.tolerance) out += ";tol=" + format_number(tolerance);
  if (strategy == "portfolio" || starts != defaults.starts) {
    out += ";starts=" + std::to_string(starts);
  }
  if (strategy == "portfolio" || inner != defaults.inner) out += ";inner=" + inner;
  out += ";wd=" + format_number(weight_delay) + ";wa=" + format_number(weight_area);
  out += ";seed=" + std::to_string(seed);
  out += ";cost=" + cost;
  if (quant != defaults.quant) out += ";quant=" + quant;
  if (!fallback.empty()) out += ";fallback=" + fallback;
  if (!incremental) out += ";inc=0";
  if (spec_windows > 0) out += ";windows=" + std::to_string(spec_windows);
  if (spec_parallel) out += ";par=1";
  if (learn || learn_budget != defaults.learn_budget) {
    out += ";learn=" + std::string(learn ? "1" : "0");
    out += ";learn_budget=" + std::to_string(learn_budget);
  }
  if (!learn_dir.empty()) out += ";learn_dir=" + learn_dir;
  return out;
}

std::unique_ptr<Strategy> Recipe::make_strategy() const {
  const auto make_single = [&](const std::string& kind) -> std::unique_ptr<Strategy> {
    if (kind == "sa") {
      SaParams params;
      params.iterations = iterations;
      params.initial_temperature = initial_temperature;
      params.decay = decay;
      params.weight_delay = weight_delay;
      params.weight_area = weight_area;
      params.seed = seed;
      params.incremental = incremental;
      params.windows = spec_windows;
      params.parallel = spec_parallel;
      return std::make_unique<SaStrategy>(params);
    }
    if (kind == "greedy") {
      GreedyParams params;
      params.iterations = iterations;
      params.tolerance = tolerance;
      params.weight_delay = weight_delay;
      params.weight_area = weight_area;
      params.seed = seed;
      params.incremental = incremental;
      params.windows = spec_windows;
      params.parallel = spec_parallel;
      return std::make_unique<GreedyStrategy>(params);
    }
    fail("unknown strategy '" + kind + "'");
  };
  if (strategy == "portfolio") {
    PortfolioParams params;
    params.starts = starts;
    params.seed = seed;
    return std::make_unique<PortfolioStrategy>(
        std::shared_ptr<const Strategy>(make_single(inner)), params);
  }
  return make_single(strategy);
}

StopCondition Recipe::stop_condition() const {
  StopCondition stop;
  stop.max_iterations = iterations;
  stop.max_seconds = max_seconds;
  stop.max_evals = max_evals;
  return stop;
}

OptResult run(const Recipe& recipe, const aig::Aig& initial, const CostContext& ctx,
              Observer* observer) {
  if (recipe.learn) {
    // opt/ cannot depend on the learn/ layer (it sits above); refusing here
    // beats silently running without the loop the recipe asked for.
    fail("learn=1 needs the active-learning runner (learn::run / the aigml CLI)");
  }
  // The recipe's fallback rides into make_cost through the context (cost_spec
  // validates it against the spec — non-serve specs reject it).
  CostContext cost_ctx = ctx;
  if (!recipe.fallback.empty()) cost_ctx.serve_fallback = recipe.fallback;
  cost_ctx.quant = ml::quant_mode_from_name(recipe.quant);
  const std::unique_ptr<CostEvaluator> evaluator = make_cost(recipe.cost, cost_ctx);
  const std::unique_ptr<Strategy> strategy = recipe.make_strategy();
  return strategy->run(initial, *evaluator, recipe.stop_condition(), observer);
}

OptResult run(const std::string& recipe_text, const aig::Aig& initial, const CostContext& ctx,
              Observer* observer) {
  return run(Recipe::parse(recipe_text), initial, ctx, observer);
}

}  // namespace aigml::opt
