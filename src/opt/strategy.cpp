#include "opt/strategy.hpp"

#include <stdexcept>

#include "spec/executor.hpp"
#include "util/timer.hpp"

namespace aigml::opt {

const char* to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kIterations: return "iterations";
    case StopReason::kWallTime: return "wall_time";
    case StopReason::kEvalBudget: return "eval_budget";
  }
  return "unknown";
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t index) {
  // splitmix64 over a golden-ratio-spread offset: distinct indices map to
  // well-separated streams, and index 0 never collides with the base seed.
  std::uint64_t state = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  return splitmix64(state);
}

namespace detail {

void validate_stop(const StopCondition& stop, const char* who) {
  if (stop.max_iterations < 0) {
    throw std::invalid_argument(std::string(who) + ": max_iterations < 0");
  }
  if (stop.max_seconds < 0.0) {
    throw std::invalid_argument(std::string(who) + ": max_seconds < 0");
  }
  if (stop.max_iterations == 0 && stop.max_seconds == 0.0 && stop.max_evals == 0) {
    throw std::invalid_argument(std::string(who) +
                                ": no stopping condition (set max_iterations, "
                                "max_seconds, or max_evals)");
  }
}

OptResult search_loop(const aig::Aig& initial, CostEvaluator& evaluator,
                      const StopCondition& stop, Observer* observer,
                      const transforms::ScriptRegistry& registry, double weight_delay,
                      double weight_area, std::uint64_t seed, bool use_incremental,
                      int spec_windows, bool spec_parallel,
                      const std::function<bool(double, double, Rng&)>& accept,
                      const std::function<void()>& post_iteration) {
  if (spec_windows > 0) {
    // Batched-move path: the speculative windowed engine (DESIGN.md §12)
    // replaces the loop body wholesale.  Its trajectory is bit-identical for
    // spec_parallel on/off at any thread count, but deliberately *different*
    // from the classic loop below (moves are window-local).
    spec::SpecParams sp;
    sp.windows = spec_windows;
    sp.parallel = spec_parallel;
    sp.use_incremental = use_incremental;
    return spec::speculative_loop(initial, evaluator, stop, observer, registry, weight_delay,
                                  weight_area, seed, sp, accept, post_iteration);
  }
  Timer total_timer;
  Rng rng(seed);
  // Incremental move evaluation (DESIGN.md §8): bind a persistent context to
  // the current graph, hand each candidate's dirty region to the evaluator,
  // and turn accept/reject into commit/rollback.  Values are bit-identical
  // to the from-scratch path by contract, so the trajectory cannot depend on
  // the setting.
  const bool incremental = use_incremental && evaluator.supports_incremental();
  // Snapshot the evaluator's cumulative clocks so shared evaluators report
  // run-local deltas (the pre-Strategy sweep leaked earlier runs' time).
  const double eval_seconds_before = evaluator.eval_seconds();
  const std::uint64_t eval_count_before = evaluator.eval_count();
  const std::uint64_t degraded_before = evaluator.degraded_evals();

  OptResult result;
  result.initial_eval = incremental ? evaluator.bind(initial) : evaluator.evaluate(initial);
  const double delay0 = result.initial_eval.delay > 0 ? result.initial_eval.delay : 1.0;
  const double area0 = result.initial_eval.area > 0 ? result.initial_eval.area : 1.0;
  auto cost_of = [&](const QualityEval& q) {
    return weight_delay * q.delay / delay0 + weight_area * q.area / area0;
  };

  aig::Aig current = initial;
  double current_cost = cost_of(result.initial_eval);
  result.initial_cost = current_cost;
  result.best = initial;
  result.best_eval = result.initial_eval;
  result.best_cost = current_cost;
  if (observer != nullptr) observer->on_start(initial, result.initial_eval, current_cost);
  if (stop.max_iterations > 0) {
    result.history.reserve(static_cast<std::size_t>(stop.max_iterations));
  }

  for (int iter = 0;; ++iter) {
    if (stop.max_iterations > 0 && iter >= stop.max_iterations) {
      result.stop_reason = StopReason::kIterations;
      break;
    }
    if (stop.max_seconds > 0.0 && total_timer.elapsed_s() >= stop.max_seconds) {
      result.stop_reason = StopReason::kWallTime;
      break;
    }
    if (stop.max_evals > 0 && evaluator.eval_count() - eval_count_before >= stop.max_evals) {
      result.stop_reason = StopReason::kEvalBudget;
      break;
    }

    IterationRecord record;
    record.script_index = registry.random_index(rng);

    // The traced apply's diff is charged to transform time: reporting the
    // touched region is the transform's job (transforms/traced.hpp), and
    // eval_seconds stays the paper's pure reward-calculation clock.
    Timer transform_timer;
    aig::Aig candidate;
    aig::DirtyRegion dirty;
    if (incremental) {
      transforms::TransformResult traced = registry.apply_traced(record.script_index, current);
      candidate = std::move(traced.graph);
      dirty = std::move(traced.dirty);
    } else {
      candidate = registry.apply(record.script_index, current);
    }
    record.transform_seconds = transform_timer.elapsed_s();

    const double eval_before = evaluator.eval_seconds();
    const QualityEval q =
        incremental ? evaluator.evaluate_delta(candidate, dirty) : evaluator.evaluate(candidate);
    record.eval_seconds = evaluator.eval_seconds() - eval_before;

    record.delay = q.delay;
    record.area = q.area;
    record.cost = cost_of(q);
    // on_candidate sees the graph before accept() so harvesting observes
    // every visited state; it must not draw from `rng` (it would perturb the
    // trajectory) and none of the learn/ observers do.
    if (observer != nullptr) observer->on_candidate(iter, candidate, q);
    record.accepted = accept(record.cost, current_cost, rng);
    if (record.accepted) {
      if (incremental) evaluator.commit_move();
      current = std::move(candidate);
      current_cost = record.cost;
      if (record.cost < result.best_cost) {
        result.best = current;
        result.best_eval = q;
        result.best_cost = record.cost;
        if (observer != nullptr) observer->on_improvement(iter, q, record.cost);
      }
    } else if (incremental) {
      evaluator.rollback_move();
    }
    post_iteration();
    result.total_transform_seconds += record.transform_seconds;
    result.history.push_back(record);
    if (observer != nullptr) observer->on_iteration(iter, result.history.back());
  }

  result.total_eval_seconds = evaluator.eval_seconds() - eval_seconds_before;
  result.eval_count = evaluator.eval_count() - eval_count_before;
  result.degraded_evals = evaluator.degraded_evals() - degraded_before;
  result.total_seconds = total_timer.elapsed_s();
  if (observer != nullptr) observer->on_finish(result);
  return result;
}

}  // namespace detail

}  // namespace aigml::opt
