#pragma once
// Recipe-sweep driver for Fig. 5: runs one optimization per recipe, then —
// regardless of which evaluator guided each search — re-evaluates every
// final AIG with the *ground-truth* map+STA metrics so the fronts of
// different flows are directly comparable, exactly as the paper plots them.
//
// Runs execute in parallel on util::ThreadPool (each recipe builds its own
// evaluator from its cost spec, so nothing is shared between tasks — the
// ground-truth re-scoring pass is part of each task and parallelizes with
// it).  Results are committed in recipe order and every run is seeded by
// its recipe, so serial and parallel sweeps are bit-identical.

#include <span>
#include <vector>

#include "opt/pareto.hpp"
#include "opt/recipe.hpp"

namespace aigml::opt {

struct WeightPair {
  double delay = 1.0;
  double area = 0.5;
};

/// Grid-expansion convenience: the paper's hyperparameter sweep (cost-weight
/// pair x temperature decay rate) as a recipe list.  Seeds increment in
/// grid order (weights outer, decays inner) from `seed`, matching the
/// pre-recipe sweep driver.
struct SweepConfig {
  std::vector<WeightPair> weight_pairs = {{1.0, 0.0}, {1.0, 0.25}, {1.0, 0.5},
                                          {1.0, 1.0}, {0.5, 1.0}, {0.25, 1.0}};
  std::vector<double> decays = {0.92, 0.97};
  int iterations = 150;
  double initial_temperature = 0.08;
  std::uint64_t seed = 7;
  std::string cost = "proxy";  ///< cost spec shared by every grid point

  [[nodiscard]] std::vector<Recipe> to_recipes() const;
};

struct SweepRun {
  Recipe recipe;
  QualityEval ground_truth;       ///< map+STA metrics of the final best AIG
  QualityEval evaluator_claimed;  ///< what the guiding evaluator believed
  double seconds = 0.0;
  double transform_seconds = 0.0;
  double eval_seconds = 0.0;  ///< run-local (never includes other runs' time)
  std::uint64_t evals = 0;
};

struct SweepResult {
  std::vector<SweepRun> runs;      ///< in recipe order
  std::vector<ParetoPoint> front;  ///< ground-truth Pareto front over runs
  double total_seconds = 0.0;
};

/// Runs every recipe and scores each winner with ground-truth map+STA.
/// `ctx.library` is required (it supplies the final scoring even when no
/// recipe uses a "gt" cost).  `num_threads`: 1 = serial, 0 = the process
/// default, N = exactly N workers; the result is identical for all values.
[[nodiscard]] SweepResult run_sweep(const aig::Aig& initial, std::span<const Recipe> recipes,
                                    const CostContext& ctx, int num_threads = 1);

}  // namespace aigml::opt
