#pragma once
// Hyperparameter-sweep driver for Fig. 5: runs SA once per configuration
// (cost-weight pair x temperature decay rate), then — regardless of which
// evaluator guided the search — re-evaluates every final AIG with the
// *ground-truth* map+STA metrics so the fronts of different flows are
// directly comparable, exactly as the paper plots them.

#include <vector>

#include "celllib/library.hpp"
#include "opt/pareto.hpp"
#include "opt/sa.hpp"

namespace aigml::opt {

struct WeightPair {
  double delay = 1.0;
  double area = 0.5;
};

struct SweepConfig {
  std::vector<WeightPair> weight_pairs = {{1.0, 0.0}, {1.0, 0.25}, {1.0, 0.5},
                                          {1.0, 1.0}, {0.5, 1.0}, {0.25, 1.0}};
  std::vector<double> decays = {0.92, 0.97};
  int iterations = 150;
  double initial_temperature = 0.08;
  std::uint64_t seed = 7;
};

struct SweepRun {
  SaParams params;
  QualityEval ground_truth;       ///< map+STA metrics of the final best AIG
  QualityEval evaluator_claimed;  ///< what the guiding evaluator believed
  double seconds = 0.0;
  double transform_seconds = 0.0;
  double eval_seconds = 0.0;
};

struct SweepResult {
  std::vector<SweepRun> runs;
  std::vector<ParetoPoint> front;  ///< ground-truth Pareto front over runs
  double total_seconds = 0.0;
};

/// Runs the full grid.  `evaluator` guides the SA; `lib` supplies the final
/// ground-truth scoring.
[[nodiscard]] SweepResult sweep_flow(const aig::Aig& initial, CostEvaluator& evaluator,
                                     const cell::Library& lib, const SweepConfig& config);

}  // namespace aigml::opt
