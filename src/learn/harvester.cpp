#include "learn/harvester.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "aig/analysis.hpp"
#include "flow/label.hpp"
#include "util/fault.hpp"

namespace aigml::learn {

namespace {

/// Relative slack on the envelope test so float dust on a boundary feature
/// (a state *at* the training min/max) does not read as novelty.
constexpr double kEnvelopeSlack = 1e-9;

bool outside(const features::FeatureVector& f, const features::FeatureVector& lo,
             const features::FeatureVector& hi) {
  for (std::size_t i = 0; i < f.size(); ++i) {
    const double slack = kEnvelopeSlack * std::max({1.0, std::abs(lo[i]), std::abs(hi[i])});
    if (f[i] < lo[i] - slack || f[i] > hi[i] + slack) return true;
  }
  return false;
}

}  // namespace

LabelHarvester::LabelHarvester(const cell::Library& lib, ReplayBuffer& buffer,
                               HarvestParams params, std::function<std::uint64_t()> generation_fn)
    : lib_(lib), buffer_(buffer), params_(params), generation_fn_(std::move(generation_fn)),
      pool_(params.num_threads) {
  // Keys already persisted in the buffer (a previous run's harvest) join the
  // novelty filter up front: the selection thread never reads the buffer
  // while the worker appends, and a structure labeled last run is not worth
  // paying map + STA for again.
  for (std::size_t i = 0; i < buffer_.size(); ++i) seen_.insert(buffer_.row(i).key);
  if (params_.async) {
    worker_ = std::thread([this] { worker_loop(); });
  }
}

LabelHarvester::~LabelHarvester() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void LabelHarvester::seed_envelope(const ml::Dataset& data) {
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    const auto row = data.row(r);
    if (!envelope_seeded_) {
      std::copy(row.begin(), row.end(), envelope_min_.begin());
      std::copy(row.begin(), row.end(), envelope_max_.begin());
      envelope_seeded_ = true;
      continue;
    }
    for (std::size_t i = 0; i < envelope_min_.size(); ++i) {
      envelope_min_[i] = std::min(envelope_min_[i], row[i]);
      envelope_max_[i] = std::max(envelope_max_[i], row[i]);
    }
  }
}

void LabelHarvester::seed_known(const ml::Dataset& data) {
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    if (data.key(r) != 0) seen_.insert(data.key(r));
  }
}

void LabelHarvester::seed_known(const ReplayBuffer& other) {
  for (std::size_t i = 0; i < other.size(); ++i) seen_.insert(other.row(i).key);
}

void LabelHarvester::on_start(const aig::Aig& initial, const opt::QualityEval& initial_eval,
                              double /*initial_cost*/) {
  const auto level = std::max<unsigned>(1, aig::aig_level(initial));
  initial_delay_per_level_ = initial_eval.delay / static_cast<double>(level);
  seen_.insert(flow::variant_signature(initial));
}

void LabelHarvester::on_candidate(int /*iteration*/, const aig::Aig& candidate,
                                  const opt::QualityEval& eval) {
  {
    const std::lock_guard lock(mutex_);
    // `considered` counts the whole candidate stream — the harvest-rate
    // denominator stays honest even after the budget fills.
    ++stats_.considered;
    if (params_.budget > 0 && stats_.selected >= static_cast<std::size_t>(params_.budget)) {
      return;
    }
  }
  const std::uint64_t key = flow::variant_signature(candidate);
  if (!seen_.insert(key).second) {
    const std::lock_guard lock(mutex_);
    ++stats_.duplicates;
    return;
  }

  // Disagreement: how far the model's delay-per-level has drifted from the
  // run-initial ratio.  The proxy (level count) and the model agreeing means
  // the state teaches the model little; divergence is where labels pay.
  const auto level = std::max<unsigned>(1, aig::aig_level(candidate));
  const double ratio = eval.delay / static_cast<double>(level);
  const double drift = initial_delay_per_level_ > 0.0
                           ? std::abs(ratio - initial_delay_per_level_) / initial_delay_per_level_
                           : 0.0;
  bool take = drift >= params_.min_disagreement;
  bool envelope_hit = false;
  if (!take && params_.envelope) {
    // Envelope check needs features — only paid when disagreement alone did
    // not already decide.
    const features::FeatureVector f = features::extract(candidate);
    envelope_hit = !envelope_seeded_ || outside(f, envelope_min_, envelope_max_);
    take = envelope_hit;
    // Grow the envelope over everything examined: one representative per
    // unexplored region gets harvested, its neighbours then test as seen.
    if (!envelope_seeded_) {
      envelope_min_ = f;
      envelope_max_ = f;
      envelope_seeded_ = true;
    } else {
      for (std::size_t i = 0; i < f.size(); ++i) {
        envelope_min_[i] = std::min(envelope_min_[i], f[i]);
        envelope_max_[i] = std::max(envelope_max_[i], f[i]);
      }
    }
  }
  if (!take) return;

  Pending pending;
  pending.graph = candidate;
  pending.key = key;
  pending.predicted = eval;
  pending.generation = generation_fn_ ? generation_fn_() : 0;
  {
    const std::lock_guard lock(mutex_);
    ++stats_.selected;
    if (envelope_hit) {
      ++stats_.by_envelope;
    } else {
      ++stats_.by_disagreement;
    }
  }
  enqueue(std::move(pending));
}

void LabelHarvester::enqueue(Pending pending) {
  if (!params_.async) {
    std::vector<Pending> batch;
    batch.push_back(std::move(pending));
    label_batch(batch);
    return;
  }
  {
    const std::lock_guard lock(mutex_);
    queue_.push_back(std::move(pending));
  }
  work_cv_.notify_one();
}

void LabelHarvester::worker_loop() {
  std::vector<Pending> batch;
  while (true) {
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      const std::size_t take =
          std::min(queue_.size(), static_cast<std::size_t>(std::max(1, params_.batch)));
      batch.clear();
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      labeling_ = true;
    }
    label_batch(batch);
    {
      const std::lock_guard lock(mutex_);
      labeling_ = false;
    }
    drain_cv_.notify_all();
  }
}

void LabelHarvester::label_batch(std::vector<Pending>& batch) {
  struct Labeled {
    flow::LabeledRow row;
    bool ok = false;
  };
  // Ground truth fans out over the pool; a per-item mapping/STA failure
  // drops that row only (never the batch, never the search).
  auto labels = pool_.parallel_map<Labeled>(batch.size(), [&](std::size_t i) {
    Labeled out;
    try {
      fault::throw_if(fault::Site::kWorkerThrow, "label worker failed");
      out.row = flow::label_one(batch[i].graph, lib_);
      out.ok = true;
    } catch (const std::exception&) {
      out.ok = false;
    }
    return out;
  });
  // Commit in batch (= selection) order, so buffer contents do not depend on
  // pool scheduling.
  std::size_t appended = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!labels[i].ok) continue;
    ReplayRow row;
    row.key = batch[i].key;
    row.generation = batch[i].generation;
    row.delay_ps = labels[i].row.delay_ps;
    row.area_um2 = labels[i].row.area_um2;
    row.pred_delay = batch[i].predicted.delay;
    row.pred_area = batch[i].predicted.area;
    row.features = labels[i].row.features;
    if (buffer_.add(row)) {
      ++appended;
      // The sink sees exactly the rows that landed (post-dedup), in the
      // same commit order — graph-side stores stay in lockstep with the
      // buffer.
      if (graph_sink_) graph_sink_(batch[i].graph, row.key, row.delay_ps, row.area_um2);
    }
  }
  const std::lock_guard lock(mutex_);
  stats_.labeled += appended;
}

void LabelHarvester::drain() {
  if (!params_.async) return;
  std::unique_lock lock(mutex_);
  drain_cv_.wait(lock, [&] { return queue_.empty() && !labeling_; });
}

LabelHarvester::Stats LabelHarvester::stats() const {
  const std::lock_guard lock(mutex_);
  return stats_;
}

std::size_t LabelHarvester::selected() const {
  const std::lock_guard lock(mutex_);
  return stats_.selected;
}

}  // namespace aigml::learn
