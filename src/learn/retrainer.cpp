#include "learn/retrainer.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <span>
#include <stdexcept>
#include <utility>

#include "features/features.hpp"
#include "util/fault.hpp"
#include "util/fsio.hpp"

namespace aigml::learn {

namespace {

double percent_error(double predicted, double truth) {
  if (truth == 0.0) return 0.0;
  return 100.0 * std::abs(predicted - truth) / std::abs(truth);
}

}  // namespace

bool GraphStore::add(aig::Aig graph, std::uint64_t key, double delay_ps, double area_um2) {
  const std::lock_guard lock(mutex_);
  if (entries_.size() >= capacity_) return false;
  if (!keys_.insert(key).second) return false;
  Entry entry;
  entry.graph = std::move(graph);
  entry.key = key;
  entry.delay_ps = delay_ps;
  entry.area_um2 = area_um2;
  entries_.push_back(std::move(entry));
  return true;
}

std::size_t GraphStore::size() const {
  const std::lock_guard lock(mutex_);
  return entries_.size();
}

void GraphStore::export_sorted(std::vector<const aig::Aig*>& graphs,
                               std::vector<double>& delay_ps,
                               std::vector<double>& area_um2) const {
  const std::lock_guard lock(mutex_);
  std::vector<const Entry*> order;
  order.reserve(entries_.size());
  for (const Entry& entry : entries_) order.push_back(&entry);
  // Keys are unique (add() dedups), so the sort is a total order and the
  // export is independent of arrival order.
  std::sort(order.begin(), order.end(),
            [](const Entry* a, const Entry* b) { return a->key < b->key; });
  graphs.clear();
  delay_ps.clear();
  area_um2.clear();
  graphs.reserve(order.size());
  delay_ps.reserve(order.size());
  area_um2.reserve(order.size());
  for (const Entry* entry : order) {
    graphs.push_back(&entry->graph);
    delay_ps.push_back(entry->delay_ps);
    area_um2.push_back(entry->area_um2);
  }
}

double observed_error_pct(const ReplayBuffer& buffer, std::size_t first_row) {
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = first_row; i < buffer.size(); ++i) {
    const ReplayRow& row = buffer.row(i);
    sum += 0.5 * (percent_error(row.pred_delay, row.delay_ps) +
                  percent_error(row.pred_area, row.area_um2));
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double model_error_pct(const ml::Model& delay_model, const ml::Model& area_model,
                       const ReplayBuffer& buffer, std::size_t first_row) {
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = first_row; i < buffer.size(); ++i) {
    const ReplayRow& row = buffer.row(i);
    const std::span<const double> f(row.features.data(), row.features.size());
    sum += 0.5 * (percent_error(delay_model.predict(f), row.delay_ps) +
                  percent_error(area_model.predict(f), row.area_um2));
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double model_error_pct(const ml::Model& delay_model, const ml::Model& area_model,
                       const GraphStore& graphs) {
  std::vector<const aig::Aig*> structures;
  std::vector<double> delay_ps;
  std::vector<double> area_um2;
  graphs.export_sorted(structures, delay_ps, area_um2);
  if (structures.empty()) return 0.0;
  const std::span<const aig::Aig* const> batch(structures.data(), structures.size());
  const std::vector<double> pred_delay = delay_model.predict_graphs(batch);
  const std::vector<double> pred_area = area_model.predict_graphs(batch);
  double sum = 0.0;
  for (std::size_t i = 0; i < structures.size(); ++i) {
    sum += 0.5 * (percent_error(pred_delay[i], delay_ps[i]) +
                  percent_error(pred_area[i], area_um2[i]));
  }
  return sum / static_cast<double>(structures.size());
}

Retrainer::Retrainer(serve::ModelRegistry& registry, RetrainParams params)
    : registry_(&registry), params_(std::move(params)), graphs_(params_.graph_capacity) {}

void Retrainer::set_base(ml::Dataset delay, ml::Dataset area) {
  base_delay_ = std::move(delay);
  base_area_ = std::move(area);
  has_base_ = true;
}

bool Retrainer::should_retrain(const ReplayBuffer& buffer) const {
  if (buffer.size() <= rows_consumed_) return false;
  const std::size_t new_rows = buffer.size() - rows_consumed_;
  if (new_rows < static_cast<std::size_t>(std::max(1, params_.min_new_rows))) return false;
  if (params_.min_error_pct > 0.0 &&
      observed_error_pct(buffer, rows_consumed_) < params_.min_error_pct) {
    return false;
  }
  return true;
}

bool Retrainer::maybe_retrain(const ReplayBuffer& buffer) {
  if (!should_retrain(buffer)) return false;
  retrain(buffer);
  return true;
}

void Retrainer::retrain(const ReplayBuffer& buffer) {
  if (buffer.size() == 0 && !has_base_ && graphs_.size() == 0) {
    throw std::invalid_argument("Retrainer::retrain: no rows to train on");
  }
  ml::Dataset harvest_delay(features::feature_names());
  ml::Dataset harvest_area(features::feature_names());
  buffer.to_datasets(harvest_delay, harvest_area, "harvest");

  // Family dispatch on the *current* snapshot per name (header comment):
  // an absent snapshot trains the tree family, matching the pre-§14 loop.
  const auto current_delay = registry_->try_get(params_.delay_model);
  const auto current_area = registry_->try_get(params_.area_model);
  const bool delay_is_gnn = current_delay != nullptr && current_delay->needs_graph();
  const bool area_is_gnn = current_area != nullptr && current_area->needs_graph();

  std::optional<ml::GbdtModel> delay_gbdt;
  std::optional<ml::GnnModel> delay_gnn;
  std::optional<ml::GbdtModel> area_gbdt;
  std::optional<ml::GnnModel> area_gnn;
  if (delay_is_gnn) {
    delay_gnn = refresh_gnn(params_.delay_model, /*delay_target=*/true);
  } else {
    delay_gbdt = refresh_one(
        params_.delay_model,
        has_base_ ? base_delay_ : ml::Dataset(features::feature_names()), harvest_delay);
  }
  if (area_is_gnn) {
    area_gnn = refresh_gnn(params_.area_model, /*delay_target=*/false);
  } else {
    area_gbdt = refresh_one(
        params_.area_model,
        has_base_ ? base_area_ : ml::Dataset(features::feature_names()), harvest_area);
  }

  // Both models are fully trained before anything is installed, so a throw
  // anywhere above (or from this chaos site) leaves the registry — and
  // therefore the running search — exactly as it was.
  fault::throw_if(fault::Site::kRetrainThrow, "retrain aborted before install");

  // Install both models before saving either: the in-process consumers flip
  // at the next generation poll, and a failed disk write cannot leave the
  // registry half-refreshed.
  if (delay_is_gnn) {
    registry_->install(params_.delay_model, *delay_gnn);
  } else {
    registry_->install(params_.delay_model, *delay_gbdt);
  }
  if (area_is_gnn) {
    registry_->install(params_.area_model, *area_gnn);
  } else {
    registry_->install(params_.area_model, *area_gbdt);
  }
  if (!params_.save_dir.empty()) {
    std::filesystem::create_directories(params_.save_dir);
    const auto save_gbdt = [this](const std::string& name, const ml::GbdtModel& model) {
      // fsync'd write-to-temp + durable rename: a concurrent RELOAD in a
      // serving process never observes a half-written model file, and a
      // crash right after the rename cannot roll the directory entry back
      // to a file whose bytes never hit the platter.  The .gbdt2 container
      // lands first: the registry prefers the v2 sibling, so a RELOAD
      // between the two renames picks up the *fresh* v2, never a stale one
      // next to a fresh text file.
      model.save_v2(params_.save_dir / (name + ".gbdt2"));
      const auto final_path = params_.save_dir / (name + ".gbdt");
      const auto temp_path = params_.save_dir / (name + ".gbdt.tmp");
      model.save(temp_path);
      fsio::fsync_path(temp_path);
      fsio::rename_durable(temp_path, final_path);
    };
    // GnnModel::save is already write_file_atomic; a same-stem .gbdt/.gbdt2
    // sibling would shadow the .gnn on RELOAD (registry precedence), but a
    // gnn-served name never has one — the dispatch above keeps families
    // stable per name.
    if (delay_is_gnn) {
      delay_gnn->save(params_.save_dir / (params_.delay_model + ".gnn"));
    } else {
      save_gbdt(params_.delay_model, *delay_gbdt);
    }
    if (area_is_gnn) {
      area_gnn->save(params_.save_dir / (params_.area_model + ".gnn"));
    } else {
      save_gbdt(params_.area_model, *area_gbdt);
    }
  }
  ++retrains_;
  rows_consumed_ = buffer.size();
}

ml::GbdtModel Retrainer::refresh_one(const std::string& name, const ml::Dataset& base,
                                     const ml::Dataset& harvest) const {
  // Canonical merged set: base rows in their stored order, harvested rows
  // deduped against them and sorted by key — the training bytes depend on
  // the row *set*, never on harvest arrival order (tests/test_learn.cpp).
  ml::Dataset merged = base;
  merged.merge_dedup(harvest);
  merged = merged.sorted_by_key();
  if (merged.num_rows() == 0) {
    throw std::invalid_argument("Retrainer: model '" + name + "' has no training rows");
  }

  const auto current =
      std::dynamic_pointer_cast<const ml::GbdtModel>(registry_->try_get(name));
  // A warm residual fit needs the base distribution in the batch; harvest
  // alone would anchor the refresh to a handful of states.  A family
  // crossover (gnn snapshot under a name now refreshing as gbdt) has no
  // tree weights to continue from: the cast fails and the fit runs cold.
  const bool warm = params_.warm_start && current != nullptr && has_base_;
  ml::GbdtParams fit = params_.gbdt;
  if (warm) {
    fit.num_trees = std::max(1, params_.extra_trees);
    fit.learning_rate = current->learning_rate();  // warm-start contract (gbdt.hpp)
  }
  return ml::GbdtModel::train(merged, fit, nullptr, nullptr, warm ? current.get() : nullptr);
}

ml::GnnModel Retrainer::refresh_gnn(const std::string& name, bool delay_target) const {
  std::vector<const aig::Aig*> structures;
  std::vector<double> delay_ps;
  std::vector<double> area_um2;
  graphs_.export_sorted(structures, delay_ps, area_um2);
  if (structures.empty()) {
    throw std::invalid_argument("Retrainer: model '" + name +
                                "' is family=gnn but no labeled structures were stored "
                                "(wire the harvester's graph sink into graphs())");
  }
  const auto current = std::dynamic_pointer_cast<const ml::GnnModel>(registry_->try_get(name));
  const bool warm = params_.warm_start && current != nullptr;
  ml::GnnParams fit = params_.gnn;
  if (warm) {
    // Warm weights fix the architecture; epochs/lr/seed stay the refresh
    // knobs (GnnModel::train rejects a dims mismatch, so inherit them).
    fit.hidden = current->params().hidden;
    fit.layers = current->params().layers;
  }
  const std::span<const aig::Aig* const> batch(structures.data(), structures.size());
  const std::vector<double>& labels = delay_target ? delay_ps : area_um2;
  return ml::GnnModel::train(batch, labels, fit, nullptr, warm ? current.get() : nullptr);
}

}  // namespace aigml::learn
