#include "learn/retrainer.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "features/features.hpp"
#include "util/fault.hpp"
#include "util/fsio.hpp"

namespace aigml::learn {

namespace {

double percent_error(double predicted, double truth) {
  if (truth == 0.0) return 0.0;
  return 100.0 * std::abs(predicted - truth) / std::abs(truth);
}

}  // namespace

double observed_error_pct(const ReplayBuffer& buffer, std::size_t first_row) {
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = first_row; i < buffer.size(); ++i) {
    const ReplayRow& row = buffer.row(i);
    sum += 0.5 * (percent_error(row.pred_delay, row.delay_ps) +
                  percent_error(row.pred_area, row.area_um2));
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double model_error_pct(const ml::GbdtModel& delay_model, const ml::GbdtModel& area_model,
                       const ReplayBuffer& buffer, std::size_t first_row) {
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = first_row; i < buffer.size(); ++i) {
    const ReplayRow& row = buffer.row(i);
    sum += 0.5 * (percent_error(delay_model.predict(row.features), row.delay_ps) +
                  percent_error(area_model.predict(row.features), row.area_um2));
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

Retrainer::Retrainer(serve::ModelRegistry& registry, RetrainParams params)
    : registry_(&registry), params_(std::move(params)) {}

void Retrainer::set_base(ml::Dataset delay, ml::Dataset area) {
  base_delay_ = std::move(delay);
  base_area_ = std::move(area);
  has_base_ = true;
}

bool Retrainer::should_retrain(const ReplayBuffer& buffer) const {
  if (buffer.size() <= rows_consumed_) return false;
  const std::size_t new_rows = buffer.size() - rows_consumed_;
  if (new_rows < static_cast<std::size_t>(std::max(1, params_.min_new_rows))) return false;
  if (params_.min_error_pct > 0.0 &&
      observed_error_pct(buffer, rows_consumed_) < params_.min_error_pct) {
    return false;
  }
  return true;
}

bool Retrainer::maybe_retrain(const ReplayBuffer& buffer) {
  if (!should_retrain(buffer)) return false;
  retrain(buffer);
  return true;
}

void Retrainer::retrain(const ReplayBuffer& buffer) {
  if (buffer.size() == 0 && !has_base_) {
    throw std::invalid_argument("Retrainer::retrain: no rows to train on");
  }
  ml::Dataset harvest_delay(features::feature_names());
  ml::Dataset harvest_area(features::feature_names());
  buffer.to_datasets(harvest_delay, harvest_area, "harvest");

  const ml::GbdtModel delay =
      refresh_one(params_.delay_model, has_base_ ? base_delay_ : ml::Dataset(features::feature_names()),
                  harvest_delay);
  const ml::GbdtModel area =
      refresh_one(params_.area_model, has_base_ ? base_area_ : ml::Dataset(features::feature_names()),
                  harvest_area);

  // Both models are fully trained before anything is installed, so a throw
  // anywhere above (or from this chaos site) leaves the registry — and
  // therefore the running search — exactly as it was.
  fault::throw_if(fault::Site::kRetrainThrow, "retrain aborted before install");

  // Install both models before saving either: the in-process consumers flip
  // at the next generation poll, and a failed disk write cannot leave the
  // registry half-refreshed.
  registry_->install(params_.delay_model, delay);
  registry_->install(params_.area_model, area);
  if (!params_.save_dir.empty()) {
    std::filesystem::create_directories(params_.save_dir);
    for (const auto& [name, model] :
         {std::pair<const std::string&, const ml::GbdtModel&>{params_.delay_model, delay},
          std::pair<const std::string&, const ml::GbdtModel&>{params_.area_model, area}}) {
      // fsync'd write-to-temp + durable rename: a concurrent RELOAD in a
      // serving process never observes a half-written model file, and a
      // crash right after the rename cannot roll the directory entry back
      // to a file whose bytes never hit the platter.  The .gbdt2 container
      // lands first: the registry prefers the v2 sibling, so a RELOAD
      // between the two renames picks up the *fresh* v2, never a stale one
      // next to a fresh text file.
      model.save_v2(params_.save_dir / (name + ".gbdt2"));
      const auto final_path = params_.save_dir / (name + ".gbdt");
      const auto temp_path = params_.save_dir / (name + ".gbdt.tmp");
      model.save(temp_path);
      fsio::fsync_path(temp_path);
      fsio::rename_durable(temp_path, final_path);
    }
  }
  ++retrains_;
  rows_consumed_ = buffer.size();
}

ml::GbdtModel Retrainer::refresh_one(const std::string& name, const ml::Dataset& base,
                                     const ml::Dataset& harvest) const {
  // Canonical merged set: base rows in their stored order, harvested rows
  // deduped against them and sorted by key — the training bytes depend on
  // the row *set*, never on harvest arrival order (tests/test_learn.cpp).
  ml::Dataset merged = base;
  merged.merge_dedup(harvest);
  merged = merged.sorted_by_key();
  if (merged.num_rows() == 0) {
    throw std::invalid_argument("Retrainer: model '" + name + "' has no training rows");
  }

  const std::shared_ptr<const ml::GbdtModel> current = registry_->try_get(name);
  // A warm residual fit needs the base distribution in the batch; harvest
  // alone would anchor the refresh to a handful of states.
  const bool warm = params_.warm_start && current != nullptr && has_base_;
  ml::GbdtParams fit = params_.gbdt;
  if (warm) {
    fit.num_trees = std::max(1, params_.extra_trees);
    fit.learning_rate = current->learning_rate();  // warm-start contract (gbdt.hpp)
  }
  return ml::GbdtModel::train(merged, fit, nullptr, nullptr, warm ? current.get() : nullptr);
}

}  // namespace aigml::learn
