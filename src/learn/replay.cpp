#include "learn/replay.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/fault.hpp"
#include "util/fsio.hpp"

namespace aigml::learn {

namespace {

constexpr char kMagic[4] = {'A', 'M', 'R', 'B'};
constexpr std::size_t kHeaderBytes = 12;

/// Payload words per record: key + generation (as raw 8-byte words) + 4
/// scalars + the feature vector.  Everything is 8 bytes wide, so one stride
/// covers it.  Version 2 appends one more word: the FNV-1a checksum of the
/// payload.
constexpr std::size_t payload_words() {
  return 6 + features::kNumFeatures;
}
constexpr std::size_t payload_bytes() { return payload_words() * 8; }
constexpr std::size_t record_bytes_v1() { return payload_bytes(); }
constexpr std::size_t record_bytes_v2() { return payload_bytes() + 8; }

/// FNV-1a 64 — not cryptographic; it detects torn writes and bit rot, which
/// is all a single-writer replay file needs.
std::uint64_t checksum(const char* data, std::size_t n) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

void encode_payload(const ReplayRow& row, char* out) {
  std::memcpy(out + 0, &row.key, 8);
  std::memcpy(out + 8, &row.generation, 8);
  std::memcpy(out + 16, &row.delay_ps, 8);
  std::memcpy(out + 24, &row.area_um2, 8);
  std::memcpy(out + 32, &row.pred_delay, 8);
  std::memcpy(out + 40, &row.pred_area, 8);
  std::memcpy(out + 48, row.features.data(), features::kNumFeatures * 8);
}

void encode_v2(const ReplayRow& row, char* out) {
  encode_payload(row, out);
  const std::uint64_t sum = checksum(out, payload_bytes());
  std::memcpy(out + payload_bytes(), &sum, 8);
}

ReplayRow decode_payload(const char* in) {
  ReplayRow row;
  std::memcpy(&row.key, in + 0, 8);
  std::memcpy(&row.generation, in + 8, 8);
  std::memcpy(&row.delay_ps, in + 16, 8);
  std::memcpy(&row.area_um2, in + 24, 8);
  std::memcpy(&row.pred_delay, in + 32, 8);
  std::memcpy(&row.pred_area, in + 40, 8);
  std::memcpy(row.features.data(), in + 48, features::kNumFeatures * 8);
  return row;
}

void write_header(std::string& out) {
  char header[kHeaderBytes];
  std::memcpy(header, kMagic, 4);
  const std::uint32_t version = ReplayBuffer::kFormatVersion;
  const std::uint32_t width = features::kNumFeatures;
  std::memcpy(header + 4, &version, 4);
  std::memcpy(header + 8, &width, 4);
  out.append(header, kHeaderBytes);
}

}  // namespace

ReplayBuffer::ReplayBuffer(std::filesystem::path file) : file_(std::move(file)) {
  std::ifstream in(file_, std::ios::binary);
  if (!in) return;  // fresh buffer; flush() will create the file
  char header[kHeaderBytes];
  if (!in.read(header, kHeaderBytes)) {
    throw std::runtime_error("ReplayBuffer: truncated header in " + file_.string());
  }
  if (std::memcmp(header, kMagic, 4) != 0) {
    throw std::runtime_error("ReplayBuffer: bad magic in " + file_.string());
  }
  std::uint32_t version = 0, width = 0;
  std::memcpy(&version, header + 4, 4);
  std::memcpy(&width, header + 8, 4);
  if (version != 1 && version != kFormatVersion) {
    throw std::runtime_error("ReplayBuffer: " + file_.string() + " is format version " +
                             std::to_string(version) + " (this build reads versions 1 and " +
                             std::to_string(kFormatVersion) + ")");
  }
  if (width != features::kNumFeatures) {
    throw std::runtime_error("ReplayBuffer: " + file_.string() + " has " +
                             std::to_string(width) + "-wide feature rows, this build expects " +
                             std::to_string(int{features::kNumFeatures}));
  }
  const std::size_t stride = version == 1 ? record_bytes_v1() : record_bytes_v2();
  std::vector<char> record(stride);
  // Recovery: stop at the first record that is short (torn write from a
  // crashed harvester) or, for v2, fails its checksum (bit rot, or a tear
  // that aliased onto the stride).  Every verified record before the tear
  // is kept; the file is left untouched — only its OWNER may rewrite it
  // (the single-writer rule), which its next flush() does.
  while (in.read(record.data(), static_cast<std::streamsize>(stride))) {
    if (version == kFormatVersion) {
      std::uint64_t stored = 0;
      std::memcpy(&stored, record.data() + payload_bytes(), 8);
      if (stored != checksum(record.data(), payload_bytes())) {
        needs_rewrite_ = true;
        break;
      }
    }
    const ReplayRow row = decode_payload(record.data());
    if (keys_.insert(row.key).second) rows_.push_back(row);
  }
  if (!needs_rewrite_) {
    needs_rewrite_ = version == 1 || in.gcount() > 0;  // upgrade v1; torn tail
  }
  persisted_ = rows_.size();
}

bool ReplayBuffer::add(const ReplayRow& row) {
  if (!keys_.insert(row.key).second) return false;
  rows_.push_back(row);
  return true;
}

std::size_t ReplayBuffer::flush() {
  if (file_.empty()) return 0;
  if (persisted_ == rows_.size() && !needs_rewrite_) return 0;
  if (file_.has_parent_path()) std::filesystem::create_directories(file_.parent_path());
  const std::size_t written = rows_.size() - persisted_;
  std::vector<char> record(record_bytes_v2());

  if (needs_rewrite_ || !std::filesystem::exists(file_)) {
    // Full rewrite through a temp file: recovers a torn tail, upgrades v1,
    // and creates fresh files — in every case the on-disk file flips
    // atomically from its old complete state to the new complete state.
    std::string bytes;
    bytes.reserve(kHeaderBytes + rows_.size() * record_bytes_v2());
    write_header(bytes);
    for (const ReplayRow& row : rows_) {
      encode_v2(row, record.data());
      bytes.append(record.data(), record.size());
    }
    fsio::write_file_atomic(file_, bytes);
    needs_rewrite_ = false;
  } else {
    std::ofstream out(file_, std::ios::binary | std::ios::app);
    if (!out) throw std::runtime_error("ReplayBuffer: cannot open " + file_.string());
    for (std::size_t i = persisted_; i < rows_.size(); ++i) {
      encode_v2(rows_[i], record.data());
      out.write(record.data(), static_cast<std::streamsize>(record.size()));
    }
    if (!out) throw std::runtime_error("ReplayBuffer: write failed for " + file_.string());
    out.close();
    fsio::fsync_path(file_);
  }
  persisted_ = rows_.size();

  if (fault::fire(fault::Site::kReplayTear)) {
    // Chaos site: shear the final record in half, exactly what a crash
    // mid-append leaves behind.  The next load must keep every earlier
    // record and drop only this tail.
    const auto size = std::filesystem::file_size(file_);
    if (size > record_bytes_v2() / 2) {
      std::filesystem::resize_file(file_, size - record_bytes_v2() / 2);
    }
  }
  return written;
}

void ReplayBuffer::to_datasets(ml::Dataset& delay, ml::Dataset& area,
                               const std::string& tag) const {
  for (const ReplayRow& row : rows_) {
    delay.append(row.features, row.delay_ps, tag, row.key);
    area.append(row.features, row.area_um2, tag, row.key);
  }
}

}  // namespace aigml::learn
