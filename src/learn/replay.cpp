#include "learn/replay.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace aigml::learn {

namespace {

constexpr char kMagic[4] = {'A', 'M', 'R', 'B'};
constexpr std::size_t kHeaderBytes = 12;

/// Doubles per record: key + generation (as raw 8-byte words) + 4 scalars +
/// the feature vector.  Everything is 8 bytes wide, so one stride covers it.
constexpr std::size_t record_words() {
  return 6 + features::kNumFeatures;
}
constexpr std::size_t record_bytes() { return record_words() * 8; }

void encode(const ReplayRow& row, char* out) {
  std::memcpy(out + 0, &row.key, 8);
  std::memcpy(out + 8, &row.generation, 8);
  std::memcpy(out + 16, &row.delay_ps, 8);
  std::memcpy(out + 24, &row.area_um2, 8);
  std::memcpy(out + 32, &row.pred_delay, 8);
  std::memcpy(out + 40, &row.pred_area, 8);
  std::memcpy(out + 48, row.features.data(), features::kNumFeatures * 8);
}

ReplayRow decode(const char* in) {
  ReplayRow row;
  std::memcpy(&row.key, in + 0, 8);
  std::memcpy(&row.generation, in + 8, 8);
  std::memcpy(&row.delay_ps, in + 16, 8);
  std::memcpy(&row.area_um2, in + 24, 8);
  std::memcpy(&row.pred_delay, in + 32, 8);
  std::memcpy(&row.pred_area, in + 40, 8);
  std::memcpy(row.features.data(), in + 48, features::kNumFeatures * 8);
  return row;
}

}  // namespace

ReplayBuffer::ReplayBuffer(std::filesystem::path file) : file_(std::move(file)) {
  std::ifstream in(file_, std::ios::binary);
  if (!in) return;  // fresh buffer; flush() will create the file
  char header[kHeaderBytes];
  if (!in.read(header, kHeaderBytes)) {
    throw std::runtime_error("ReplayBuffer: truncated header in " + file_.string());
  }
  if (std::memcmp(header, kMagic, 4) != 0) {
    throw std::runtime_error("ReplayBuffer: bad magic in " + file_.string());
  }
  std::uint32_t version = 0, width = 0;
  std::memcpy(&version, header + 4, 4);
  std::memcpy(&width, header + 8, 4);
  if (version != kFormatVersion) {
    throw std::runtime_error("ReplayBuffer: " + file_.string() + " is format version " +
                             std::to_string(version) + " (this build reads version " +
                             std::to_string(kFormatVersion) + ")");
  }
  if (width != features::kNumFeatures) {
    throw std::runtime_error("ReplayBuffer: " + file_.string() + " has " +
                             std::to_string(width) + "-wide feature rows, this build expects " +
                             std::to_string(int{features::kNumFeatures}));
  }
  std::vector<char> record(record_bytes());
  // A trailing partial record (torn write from a crashed harvester) fails
  // this read and is dropped; every complete record before it is kept.
  while (in.read(record.data(), static_cast<std::streamsize>(record.size()))) {
    const ReplayRow row = decode(record.data());
    if (keys_.insert(row.key).second) rows_.push_back(row);
  }
  persisted_ = rows_.size();
}

bool ReplayBuffer::add(const ReplayRow& row) {
  if (!keys_.insert(row.key).second) return false;
  rows_.push_back(row);
  return true;
}

std::size_t ReplayBuffer::flush() {
  if (file_.empty() || persisted_ == rows_.size()) return 0;
  if (file_.has_parent_path()) std::filesystem::create_directories(file_.parent_path());
  const bool fresh = !std::filesystem::exists(file_);
  std::ofstream out(file_, std::ios::binary | std::ios::app);
  if (!out) throw std::runtime_error("ReplayBuffer: cannot open " + file_.string());
  if (fresh) {
    char header[kHeaderBytes];
    std::memcpy(header, kMagic, 4);
    const std::uint32_t version = kFormatVersion;
    const std::uint32_t width = features::kNumFeatures;
    std::memcpy(header + 4, &version, 4);
    std::memcpy(header + 8, &width, 4);
    out.write(header, kHeaderBytes);
  }
  std::vector<char> record(record_bytes());
  const std::size_t written = rows_.size() - persisted_;
  for (std::size_t i = persisted_; i < rows_.size(); ++i) {
    encode(rows_[i], record.data());
    out.write(record.data(), static_cast<std::streamsize>(record.size()));
  }
  if (!out) throw std::runtime_error("ReplayBuffer: write failed for " + file_.string());
  persisted_ = rows_.size();
  return written;
}

void ReplayBuffer::to_datasets(ml::Dataset& delay, ml::Dataset& area,
                               const std::string& tag) const {
  for (const ReplayRow& row : rows_) {
    delay.append(row.features, row.delay_ps, tag, row.key);
    area.append(row.features, row.area_um2, tag, row.key);
  }
}

}  // namespace aigml::learn
