#pragma once
// ReplayBuffer — the on-disk memory of the active-learning loop (DESIGN.md
// §9): every ground-truth label harvested during a search is appended here,
// keyed by flow::variant_signature, so labels survive the run that paid for
// them and accumulate across runs into a growing training set.
//
// Disk format (version 2): a fixed 12-byte header
//
//   bytes 0-3   magic "AMRB"
//   bytes 4-7   u32 format version (kFormatVersion)
//   bytes 8-11  u32 feature count
//
// followed by fixed-stride records, one per row:
//
//   u64 key            flow::variant_signature of the labeled AIG
//   u64 generation     registry generation of the model that predicted it
//   f64 delay_ps       ground truth (map + STA)
//   f64 area_um2       ground truth
//   f64 pred_delay     the model's prediction at harvest time
//   f64 pred_area      (pred vs truth = the loop's observed error signal)
//   f64 features[N]    Table II feature vector
//   u64 checksum       FNV-1a over the record's preceding bytes (v2 only)
//
// All values are host-endian and the stride is constant, so the payload is
// directly mmap-able on the architecture that wrote it; the row count is
// derived from the file size (no trailer to corrupt).  A version or width
// mismatch is rejected loudly — silently reinterpreting rows would poison
// every retrain that follows.
//
// Crash recovery (DESIGN.md §10): the per-record checksum turns "trust the
// framing" into "verify the bytes".  On load, reading stops at the first
// record that is short OR fails its checksum — every complete, verified
// record before the tear is kept, everything from the tear on is dropped,
// and recovered() reports that it happened.  The file itself is NOT
// mutated on load (readers fold *other* processes' files and must never
// write them); the owning writer's next flush() rewrites the file cleanly
// via fsync'd tmp+rename, which also upgrades version-1 files (no
// checksums; still readable) in place.
//
// Appends are dedup-keyed: add() drops rows whose key is already present,
// both against rows loaded from disk and rows added this session, so
// concurrent harvest files can be folded together without double-counting a
// structure.  flush() appends only the not-yet-persisted suffix.
//
// A backing file has exactly ONE writer: appends are stream-buffered, so
// two processes flushing the same path could interleave mid-record and
// misframe every row after the split.  Writers therefore take per-process
// file names (learn::run uses harvest_<pid>.rpb) and readers fold all
// *.rpb files in a directory instead of sharing one.

#include <cstdint>
#include <filesystem>
#include <string>
#include <unordered_set>
#include <vector>

#include "features/features.hpp"
#include "ml/dataset.hpp"

namespace aigml::learn {

struct ReplayRow {
  std::uint64_t key = 0;         ///< flow::variant_signature of the state
  std::uint64_t generation = 0;  ///< registry generation of the predicting model
  double delay_ps = 0.0;         ///< ground truth (map + STA)
  double area_um2 = 0.0;
  double pred_delay = 0.0;       ///< model prediction at harvest time
  double pred_area = 0.0;
  features::FeatureVector features{};
};

class ReplayBuffer {
 public:
  static constexpr std::uint32_t kFormatVersion = 2;

  /// In-memory buffer (no persistence).
  ReplayBuffer() = default;
  /// Buffer backed by `file`; loads existing rows when the file exists.
  /// Throws std::runtime_error on a bad magic, version, or feature width.
  explicit ReplayBuffer(std::filesystem::path file);

  /// Appends `row` unless its key is already present.  Returns true when the
  /// row was appended.
  bool add(const ReplayRow& row);

  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }
  [[nodiscard]] const ReplayRow& row(std::size_t i) const { return rows_[i]; }
  [[nodiscard]] bool contains(std::uint64_t key) const { return keys_.count(key) != 0; }
  [[nodiscard]] const std::filesystem::path& file() const noexcept { return file_; }
  /// True when load found a torn/corrupt tail (dropped) or an old-format
  /// file — either way the next flush() rewrites the file cleanly.
  [[nodiscard]] bool recovered() const noexcept { return needs_rewrite_; }

  /// Appends the not-yet-persisted rows to the backing file (creating it,
  /// header included, when absent).  Returns rows written; no-op (0) for an
  /// unbacked buffer.
  std::size_t flush();

  /// Converts every row into keyed delay/area training rows tagged `tag`
  /// (the shape learn::Retrainer merges into its base sets).
  void to_datasets(ml::Dataset& delay, ml::Dataset& area, const std::string& tag) const;

 private:
  std::filesystem::path file_;
  std::vector<ReplayRow> rows_;
  std::unordered_set<std::uint64_t> keys_;
  std::size_t persisted_ = 0;       ///< rows already on disk
  bool needs_rewrite_ = false;      ///< torn tail or v1 file: rewrite on flush
};

}  // namespace aigml::learn
