#pragma once
// ActiveLearner — the closed loop (DESIGN.md §9).  One opt::Observer that
// composes the subsystem:
//
//      search (SA/greedy) ──on_candidate──▶ LabelHarvester ──▶ ReplayBuffer
//         ▲                                      (map+STA on a worker)
//         │ next evaluation polls                       │
//         │ the registry generation          checkpoint: drain + triggers
//         │                                             ▼
//      serve::LiveMlCost ◀──install()── Retrainer (family-dispatched refresh:
//                                        warm GBDT on rows / GNN on structures)
//
// Checkpoints fire on the *selection* count (a pure function of the
// candidate stream), the harvester is drained before the triggers are
// evaluated, and retraining runs on the search thread — so a learn=1 run is
// deterministic for a fixed seed even though labeling is asynchronous.  The
// loop's only nondeterminism knob is opting out of that barrier in custom
// wiring; learn=0 runs don't construct any of this and stay bit-identical
// to the plain PR-4 path.
//
// learn::run() is the one-call runner behind `aigml opt --recipe
// "...;learn=1"`: it builds the registry from the recipe's `ml:<dir>` cost
// spec, seeds the envelope and retrain base from `<dir>/base_{delay,area}.csv`
// when present, persists the harvest under `learn_dir`, and reports how much
// better the refreshed model predicts the harvested states than the base
// model the run started with.

#include <cstdint>
#include <filesystem>
#include <memory>
#include <vector>

#include "celllib/library.hpp"
#include "learn/harvester.hpp"
#include "learn/replay.hpp"
#include "learn/retrainer.hpp"
#include "opt/recipe.hpp"
#include "serve/registry.hpp"

namespace aigml::learn {

struct LearnParams {
  HarvestParams harvest;
  RetrainParams retrain;
  /// Backing file for the replay buffer; empty = in-memory only.  Must be
  /// this process's own file (replay.hpp's single-writer rule).
  std::filesystem::path replay_file;
  /// Sibling harvest files (other runs' *.rpb in the same directory) whose
  /// keys join the novelty filter: states they already labeled are not paid
  /// for again.  Unreadable files are skipped.
  std::vector<std::filesystem::path> known_replays;
};

struct LearnStats {
  std::size_t considered = 0;
  std::size_t selected = 0;
  std::size_t labeled = 0;
  std::size_t duplicates = 0;
  std::size_t retrains = 0;
  /// Retrain attempts that threw and were isolated (DESIGN.md §10): the
  /// registry kept its previous models and the search continued.
  std::size_t failed_retrains = 0;
  std::uint64_t swaps_observed = 0;  ///< evaluator-side swaps (filled by run())
  /// Error of the models the run *started* with on the harvested rows.
  double base_error_pct = 0.0;
  /// Error of the registry's *current* (possibly refreshed) models on the
  /// same rows — the acceptance signal: refreshed < base, on states the
  /// search actually visited.
  double final_error_pct = 0.0;
};

class ActiveLearner final : public opt::Observer {
 public:
  /// Pins the base model snapshots for the error baseline; `lib` and
  /// `registry` are borrowed and must outlive the learner.
  ActiveLearner(const cell::Library& lib, serve::ModelRegistry& registry, LearnParams params);

  /// Seeds the harvester envelope AND the retrainer base from the original
  /// training datasets.
  void set_base(const ml::Dataset& delay, const ml::Dataset& area);

  // Observer hooks.
  void on_start(const aig::Aig& initial, const opt::QualityEval& initial_eval,
                double initial_cost) override;
  void on_candidate(int iteration, const aig::Aig& candidate,
                    const opt::QualityEval& eval) override;
  void on_iteration(int iteration, const opt::IterationRecord& record) override;
  /// Drains the harvester, makes a final retrain attempt, flushes the
  /// replay buffer to disk.
  void on_finish(const opt::OptResult& result) override;

  [[nodiscard]] ReplayBuffer& buffer() noexcept { return buffer_; }
  [[nodiscard]] std::size_t retrains() const noexcept { return retrainer_.retrains(); }
  /// Aggregated loop statistics; errors are computed on demand over the
  /// current buffer (call after on_finish / drain).
  [[nodiscard]] LearnStats stats() const;

 private:
  serve::ModelRegistry* registry_;
  LearnParams params_;
  std::shared_ptr<const ml::Model> base_delay_model_;  ///< error baseline (any family)
  std::shared_ptr<const ml::Model> base_area_model_;
  ReplayBuffer buffer_;
  LabelHarvester harvester_;
  Retrainer retrainer_;
  std::size_t next_checkpoint_ = 0;
  std::size_t failed_retrains_ = 0;
};

struct LearnRunResult {
  opt::OptResult result;
  LearnStats stats;
};

/// Executes `recipe` (which must have learn == true and a cost of
/// "ml:<dir>" or "gnn:<dir>[:<delay>[,<area>]]") with the full
/// active-learning loop attached: LiveMlCost over a registry loaded from
/// <dir>, harvesting budgeted by recipe.learn_budget, harvest persisted
/// under recipe.learn_dir (when set) along with refreshed model files.
/// Both families retrain in-loop — GBDTs warm-refresh on feature rows, GNNs
/// fresh-fit on the harvested structures (Retrainer header).  Throws
/// std::invalid_argument for unsupported cost specs.
[[nodiscard]] LearnRunResult run(const opt::Recipe& recipe, const aig::Aig& initial,
                                 const cell::Library& lib);

}  // namespace aigml::learn
