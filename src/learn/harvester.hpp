#pragma once
// LabelHarvester — the acquisition half of the active-learning loop
// (DESIGN.md §9): an opt::Observer that watches every state a search
// visits, selects the ones the model is least trustworthy on, and pays the
// ground-truth price (map + STA via flow::label_one) for exactly those.
//
// Selection signals, cheapest first:
//
//   novelty       flow::variant_signature not seen this run — a structure is
//                 never harvested twice (the same dedup key the replay
//                 buffer and the offline datagen pipeline use);
//   disagreement  the ML-predicted delay per AIG level drifts from the
//                 run-initial ratio by more than `min_disagreement` — the
//                 proxy/ML divergence the paper identifies as exactly where
//                 a learned timing model earns (or loses) its keep;
//   envelope      any Table II feature falls outside the training set's
//                 per-feature [min, max] envelope (seeded from the base
//                 dataset) — the search has walked the AIG somewhere the
//                 model has never been trained, the LOSTIN accuracy cliff.
//
// Selection runs synchronously on the search thread and is a pure function
// of the candidate stream — seed-deterministic by construction (it draws no
// randomness at all).  Labeling is the expensive part and runs on a
// background worker draining a queue in FIFO batches over a
// util::ThreadPool, so the search never blocks on map + STA; rows land in
// the ReplayBuffer in selection order regardless of worker timing, and
// drain() gives readers a barrier.  `async = false` labels inline for
// debugging; buffer contents are byte-identical either way.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "celllib/library.hpp"
#include "learn/replay.hpp"
#include "opt/strategy.hpp"
#include "util/parallel.hpp"

namespace aigml::learn {

struct HarvestParams {
  /// Max rows labeled per run; 0 = unlimited.  The `learn_budget` recipe key.
  int budget = 64;
  /// Relative drift of predicted-delay-per-level vs the run-initial ratio
  /// that flags a state as "the proxy and the model disagree here".
  double min_disagreement = 0.15;
  /// Harvest states whose features leave the training envelope.
  bool envelope = true;
  /// Background labeling worker (default); false labels inline on the
  /// search thread.  Contents of the replay buffer are identical either way.
  bool async = true;
  /// States per labeling pass on the worker (amortizes pool dispatch).
  int batch = 8;
  /// Labeling pool width; 0 = default_num_threads().
  int num_threads = 0;
};

class LabelHarvester final : public opt::Observer {
 public:
  /// `buffer` is borrowed and must outlive the harvester; it is only
  /// touched by the worker (async) or inline (sync), and is safe to read
  /// after drain().  `generation_fn` stamps each row with the model
  /// generation that predicted it (defaults to 0 when absent).
  LabelHarvester(const cell::Library& lib, ReplayBuffer& buffer, HarvestParams params,
                 std::function<std::uint64_t()> generation_fn = {});
  ~LabelHarvester() override;

  LabelHarvester(const LabelHarvester&) = delete;
  LabelHarvester& operator=(const LabelHarvester&) = delete;

  /// Seeds the feature envelope from a training dataset (per-feature
  /// min/max).  Unseeded, the envelope grows from the first candidate.
  void seed_envelope(const ml::Dataset& data);

  /// Seeds the novelty filter with the dataset's row keys (datagen rows
  /// carry flow::variant_signature): a structure the base set already
  /// labeled offline is never paid for again online.
  void seed_known(const ml::Dataset& data);
  /// Same, from another replay buffer (a previous run's harvest file —
  /// writers are per-process, so sibling files must be folded explicitly).
  void seed_known(const ReplayBuffer& other);

  /// Invoked (on the labeling thread) for every row that *landed* in the
  /// buffer — post-dedup, post-STA — with the labeled structure itself.
  /// Feature rows cannot reconstruct a graph, so this is how graph-family
  /// consumers (learn::GraphStore, GNN refreshes) see the structures.
  using GraphSink = std::function<void(const aig::Aig& graph, std::uint64_t key,
                                       double delay_ps, double area_um2)>;
  /// Set before the search starts; not synchronized against a running
  /// worker.
  void set_graph_sink(GraphSink sink) { graph_sink_ = std::move(sink); }

  // Observer hooks (called from the search thread).
  void on_start(const aig::Aig& initial, const opt::QualityEval& initial_eval,
                double initial_cost) override;
  void on_candidate(int iteration, const aig::Aig& candidate,
                    const opt::QualityEval& eval) override;

  /// Blocks until every queued state has been labeled and buffered.
  void drain();

  struct Stats {
    std::size_t considered = 0;       ///< candidates examined
    std::size_t duplicates = 0;       ///< dropped by the novelty filter
    std::size_t selected = 0;         ///< queued for labeling
    std::size_t labeled = 0;          ///< rows appended to the buffer
    std::size_t by_disagreement = 0;  ///< selection-signal breakdown
    std::size_t by_envelope = 0;
  };
  /// Counters; `labeled` is exact only after drain().
  [[nodiscard]] Stats stats() const;
  /// Selection-side count (exact at any time; the retrain checkpoint gate).
  [[nodiscard]] std::size_t selected() const;

 private:
  struct Pending {
    aig::Aig graph;
    std::uint64_t key = 0;
    opt::QualityEval predicted;
    std::uint64_t generation = 0;
  };

  void enqueue(Pending pending);
  void worker_loop();
  void label_batch(std::vector<Pending>& batch);

  const cell::Library& lib_;
  ReplayBuffer& buffer_;
  const HarvestParams params_;
  std::function<std::uint64_t()> generation_fn_;
  GraphSink graph_sink_;
  ThreadPool pool_;

  // Selection state (search thread only).
  std::unordered_set<std::uint64_t> seen_;
  double initial_delay_per_level_ = 0.0;
  bool envelope_seeded_ = false;
  features::FeatureVector envelope_min_{};
  features::FeatureVector envelope_max_{};

  // Queue + counters (shared with the worker).
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< worker wake-up
  std::condition_variable drain_cv_;  ///< drain() wake-up
  std::deque<Pending> queue_;
  bool stopping_ = false;
  bool labeling_ = false;  ///< worker is inside a labeling pass
  Stats stats_;
  std::thread worker_;  ///< last member: joins before the rest tears down
};

}  // namespace aigml::learn
