#pragma once
// Retrainer — the consolidation half of the active-learning loop (DESIGN.md
// §9): when the harvest has accumulated enough evidence that the serving
// model is wrong about the states the search actually visits, it refreshes
// the delay/area GBDTs on base + harvested rows and atomically installs the
// new snapshots into the live serve::ModelRegistry — the same registry an
// in-process LiveMlCost polls and a running `aigml serve` answers from, so
// one install() moves both the search and remote clients onto the refreshed
// model at their next evaluation.
//
// Triggers (checked at deterministic checkpoints by the ActiveLearner):
//   * row count — `min_new_rows` labeled rows since the last retrain;
//   * observed error — when `min_error_pct > 0`, additionally require the
//     mean |prediction − ground truth| on those rows to exceed it (a model
//     that is still accurate on harvested states is left alone).
//
// The refresh itself: harvest rows (keyed by variant signature) are folded
// into the base training sets with merge_dedup, the merged set is
// canonicalized with sorted_by_key — GBDT row subsampling is positional, so
// canonical order makes the refreshed model independent of the order
// harvest batches arrived in — and training warm-starts from the current
// registry snapshot (a short residual fit of `extra_trees` rounds, not a
// from-scratch 400-tree run; cold when the registry has no model yet or
// warm_start is off).

#include <cstdint>
#include <filesystem>
#include <string>

#include "learn/replay.hpp"
#include "ml/gbdt.hpp"
#include "serve/registry.hpp"

namespace aigml::learn {

struct RetrainParams {
  int min_new_rows = 16;       ///< labeled rows since last retrain that arm the trigger
  double min_error_pct = 0.0;  ///< additionally require this observed error (0 = row count only)
  int extra_trees = 60;        ///< boosting rounds per warm refresh
  bool warm_start = true;      ///< continue from the current snapshot (vs cold retrain)
  ml::GbdtParams gbdt;         ///< depth/subsample/seed knobs (num_trees used cold only)
  std::string delay_model = "delay";
  std::string area_model = "area";
  /// When set, refreshed models are also written here as <name>.gbdt via
  /// write-to-temp + atomic rename — the directory a `aigml serve --models`
  /// instance RELOADs from.
  std::filesystem::path save_dir;
};

/// Mean absolute percent error of the stored predictions vs ground truth
/// over rows [first_row, buffer.size()), averaged across the delay and area
/// targets.  0 when the range is empty.
[[nodiscard]] double observed_error_pct(const ReplayBuffer& buffer, std::size_t first_row = 0);

/// Same, but re-predicting with the given models instead of the stored
/// at-harvest predictions (how the bench scores base vs refreshed models on
/// an identical row set).
[[nodiscard]] double model_error_pct(const ml::GbdtModel& delay_model,
                                     const ml::GbdtModel& area_model,
                                     const ReplayBuffer& buffer, std::size_t first_row = 0);

class Retrainer {
 public:
  /// `registry` is borrowed and must outlive the retrainer.
  Retrainer(serve::ModelRegistry& registry, RetrainParams params);

  /// Base training rows the harvest is merged into (typically the datagen
  /// CSVs the original model was trained on).  Optional: without a base the
  /// refresh trains on harvested rows alone — and always cold, because a
  /// warm residual fit on a tiny harvest-only set would anchor to the
  /// harvest's quirks.
  void set_base(ml::Dataset delay, ml::Dataset area);

  /// True when the triggers above would fire right now.
  [[nodiscard]] bool should_retrain(const ReplayBuffer& buffer) const;

  /// Checks the triggers and, when they fire, retrains + installs both
  /// models.  Returns true when a retrain happened.  The buffer must be
  /// quiescent (harvester drained).
  bool maybe_retrain(const ReplayBuffer& buffer);

  /// Unconditional refresh (the `aigml learn` daemon's --once path and the
  /// end-of-run flush).  Throws std::invalid_argument when there are no
  /// rows to train on.
  void retrain(const ReplayBuffer& buffer);

  [[nodiscard]] std::size_t retrains() const noexcept { return retrains_; }
  /// Buffer size at the last retrain (the "new rows" watermark).
  [[nodiscard]] std::size_t rows_consumed() const noexcept { return rows_consumed_; }

 private:
  [[nodiscard]] ml::GbdtModel refresh_one(const std::string& name, const ml::Dataset& base,
                                          const ml::Dataset& harvest) const;

  serve::ModelRegistry* registry_;
  RetrainParams params_;
  ml::Dataset base_delay_;
  ml::Dataset base_area_;
  bool has_base_ = false;
  std::size_t retrains_ = 0;
  std::size_t rows_consumed_ = 0;
};

}  // namespace aigml::learn
