#pragma once
// Retrainer — the consolidation half of the active-learning loop (DESIGN.md
// §9): when the harvest has accumulated enough evidence that the serving
// model is wrong about the states the search actually visits, it refreshes
// the delay/area models on base + harvested evidence and atomically installs
// the new snapshots into the live serve::ModelRegistry — the same registry an
// in-process LiveMlCost polls and a running `aigml serve` answers from, so
// one install() moves both the search and remote clients onto the refreshed
// model at their next evaluation.
//
// Triggers (checked at deterministic checkpoints by the ActiveLearner):
//   * row count — `min_new_rows` labeled rows since the last retrain;
//   * observed error — when `min_error_pct > 0`, additionally require the
//     mean |prediction − ground truth| on those rows to exceed it (a model
//     that is still accurate on harvested states is left alone).
//
// The refresh is family-dispatched per model name on the *current* registry
// snapshot (DESIGN.md §14):
//   * gbdt — harvest rows (keyed by variant signature) are folded into the
//     base training sets with merge_dedup, the merged set is canonicalized
//     with sorted_by_key — GBDT row subsampling is positional, so canonical
//     order makes the refreshed model independent of the order harvest
//     batches arrived in — and training warm-starts from the current
//     registry snapshot (a short residual fit of `extra_trees` rounds, not
//     a from-scratch 400-tree run; cold when the registry has no model yet
//     or warm_start is off).
//   * gnn — feature rows cannot reconstruct a graph, so GNN refreshes
//     fresh-fit on the labeled *structures* in the GraphStore (filled by the
//     LabelHarvester's graph sink), key-sorted for the same arrival-order
//     independence, warm-started from the current snapshot's weights.
// Either way both models train fully before anything installs, so a throw
// leaves the registry — and the search riding on it — untouched.

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "aig/aig.hpp"
#include "learn/replay.hpp"
#include "ml/gbdt.hpp"
#include "ml/gnn.hpp"
#include "serve/registry.hpp"

namespace aigml::learn {

struct RetrainParams {
  int min_new_rows = 16;       ///< labeled rows since last retrain that arm the trigger
  double min_error_pct = 0.0;  ///< additionally require this observed error (0 = row count only)
  int extra_trees = 60;        ///< boosting rounds per warm refresh
  bool warm_start = true;      ///< continue from the current snapshot (vs cold retrain)
  ml::GbdtParams gbdt;         ///< depth/subsample/seed knobs (num_trees used cold only)
  /// GNN refresh fit (epochs/lr/seed; hidden/layers yield to the warm
  /// snapshot's architecture when warm-starting).
  ml::GnnParams gnn;
  /// GraphStore bound: labeled structures kept for GNN refreshes (oldest
  /// evidence wins the slot; new structures past the cap are dropped).
  std::size_t graph_capacity = 512;
  std::string delay_model = "delay";
  std::string area_model = "area";
  /// When set, refreshed models are also written here — <name>.gbdt2 +
  /// <name>.gbdt for the tree family, <name>.gnn for the graph family — via
  /// write-to-temp + atomic rename, the directory a `aigml serve --models`
  /// instance RELOADs from.
  std::filesystem::path save_dir;
};

/// Bounded, dedup-keyed store of labeled AIG structures — the graph-side
/// twin of the ReplayBuffer.  Feature rows are enough to refresh a GBDT but
/// cannot reconstruct a graph, so the LabelHarvester's graph sink lands
/// every committed label's structure here for GNN refreshes.  add() is
/// called from the labeling worker; readers run with the harvester drained
/// (the ActiveLearner checkpoint contract), and all entry points lock.
class GraphStore {
 public:
  explicit GraphStore(std::size_t capacity = 512) : capacity_(capacity) {}

  /// Stores one labeled structure; false (nothing stored) when the key is
  /// already present or the store is at capacity.
  bool add(aig::Aig graph, std::uint64_t key, double delay_ps, double area_um2);

  [[nodiscard]] std::size_t size() const;

  /// Pointers + labels in key-sorted order — the canonical order GBDT gets
  /// via sorted_by_key, so refreshed weights depend on the structure *set*,
  /// never on harvest arrival order.  Pointers alias store entries: valid
  /// until the next add(), i.e. callers hold the drain barrier.
  void export_sorted(std::vector<const aig::Aig*>& graphs, std::vector<double>& delay_ps,
                     std::vector<double>& area_um2) const;

 private:
  struct Entry {
    aig::Aig graph;
    std::uint64_t key = 0;
    double delay_ps = 0.0;
    double area_um2 = 0.0;
  };

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  std::unordered_set<std::uint64_t> keys_;
  std::size_t capacity_;
};

/// Mean absolute percent error of the stored predictions vs ground truth
/// over rows [first_row, buffer.size()), averaged across the delay and area
/// targets.  0 when the range is empty.
[[nodiscard]] double observed_error_pct(const ReplayBuffer& buffer, std::size_t first_row = 0);

/// Same, but re-predicting with the given models instead of the stored
/// at-harvest predictions (how the bench scores base vs refreshed models on
/// an identical row set).  Both models must be feature-row families
/// (needs_graph() == false) — a graph model cannot predict from a replay
/// row; use the GraphStore overload for those.
[[nodiscard]] double model_error_pct(const ml::Model& delay_model, const ml::Model& area_model,
                                     const ReplayBuffer& buffer, std::size_t first_row = 0);

/// Graph-family twin: re-predicts the stored structures (batched) and scores
/// against their STA labels.  0 when the store is empty.
[[nodiscard]] double model_error_pct(const ml::Model& delay_model, const ml::Model& area_model,
                                     const GraphStore& graphs);

class Retrainer {
 public:
  /// `registry` is borrowed and must outlive the retrainer.
  Retrainer(serve::ModelRegistry& registry, RetrainParams params);

  /// Base training rows the harvest is merged into (typically the datagen
  /// CSVs the original model was trained on).  Optional: without a base the
  /// refresh trains on harvested rows alone — and always cold, because a
  /// warm residual fit on a tiny harvest-only set would anchor to the
  /// harvest's quirks.
  void set_base(ml::Dataset delay, ml::Dataset area);

  /// True when the triggers above would fire right now.
  [[nodiscard]] bool should_retrain(const ReplayBuffer& buffer) const;

  /// Checks the triggers and, when they fire, retrains + installs both
  /// models.  Returns true when a retrain happened.  The buffer must be
  /// quiescent (harvester drained).
  bool maybe_retrain(const ReplayBuffer& buffer);

  /// Unconditional refresh (the `aigml learn` daemon's --once path and the
  /// end-of-run flush).  Throws std::invalid_argument when there are no
  /// rows to train on.
  void retrain(const ReplayBuffer& buffer);

  [[nodiscard]] std::size_t retrains() const noexcept { return retrains_; }
  /// Buffer size at the last retrain (the "new rows" watermark).
  [[nodiscard]] std::size_t rows_consumed() const noexcept { return rows_consumed_; }

  /// Labeled structures for GNN refreshes — wire the LabelHarvester's graph
  /// sink at this store's add().
  [[nodiscard]] GraphStore& graphs() noexcept { return graphs_; }
  [[nodiscard]] const GraphStore& graphs() const noexcept { return graphs_; }

 private:
  [[nodiscard]] ml::GbdtModel refresh_one(const std::string& name, const ml::Dataset& base,
                                          const ml::Dataset& harvest) const;
  /// Fresh GNN fit on the GraphStore (warm-started from the current
  /// snapshot's weights); throws std::invalid_argument when the store is
  /// empty.
  [[nodiscard]] ml::GnnModel refresh_gnn(const std::string& name, bool delay_target) const;

  serve::ModelRegistry* registry_;
  RetrainParams params_;
  ml::Dataset base_delay_;
  ml::Dataset base_area_;
  bool has_base_ = false;
  GraphStore graphs_;
  std::size_t retrains_ = 0;
  std::size_t rows_consumed_ = 0;
};

}  // namespace aigml::learn
