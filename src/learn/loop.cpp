#include "learn/loop.hpp"

#include <unistd.h>

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "serve/live_cost.hpp"

namespace aigml::learn {

namespace fs = std::filesystem;

ActiveLearner::ActiveLearner(const cell::Library& lib, serve::ModelRegistry& registry,
                             LearnParams params)
    : registry_(&registry), params_(std::move(params)),
      base_delay_model_(registry.try_get(params_.retrain.delay_model)),
      base_area_model_(registry.try_get(params_.retrain.area_model)),
      buffer_(params_.replay_file.empty() ? ReplayBuffer{} : ReplayBuffer(params_.replay_file)),
      harvester_(lib, buffer_, params_.harvest,
                 [this] { return registry_->generation(); }),
      retrainer_(registry, params_.retrain) {
  // Feature rows cannot reconstruct a graph: every committed label's
  // structure also lands in the retrainer's GraphStore, which GNN refreshes
  // fresh-fit on.  Wired unconditionally — the store is bounded and cheap,
  // and a mid-run family swap (a gnn checkpoint installed over a gbdt name)
  // must find the structures already collected.
  harvester_.set_graph_sink(
      [this](const aig::Aig& g, std::uint64_t key, double delay_ps, double area_um2) {
        retrainer_.graphs().add(g, key, delay_ps, area_um2);
      });
  for (const fs::path& sibling : params_.known_replays) {
    if (sibling == params_.replay_file) continue;
    try {
      harvester_.seed_known(ReplayBuffer(sibling));
    } catch (const std::exception&) {
      // A foreign-format or torn sibling costs at most some duplicate
      // labeling; it must not stop this run.
    }
  }
}

void ActiveLearner::set_base(const ml::Dataset& delay, const ml::Dataset& area) {
  harvester_.seed_envelope(delay);
  harvester_.seed_known(delay);
  retrainer_.set_base(delay, area);
}

void ActiveLearner::on_start(const aig::Aig& initial, const opt::QualityEval& initial_eval,
                             double initial_cost) {
  harvester_.on_start(initial, initial_eval, initial_cost);
  next_checkpoint_ = static_cast<std::size_t>(std::max(1, params_.retrain.min_new_rows));
}

void ActiveLearner::on_candidate(int iteration, const aig::Aig& candidate,
                                 const opt::QualityEval& eval) {
  harvester_.on_candidate(iteration, candidate, eval);
}

void ActiveLearner::on_iteration(int /*iteration*/, const opt::IterationRecord& /*record*/) {
  // Checkpoints key off the *selection* count — a pure function of the
  // candidate stream — and drain before evaluating the triggers, so when a
  // retrain fires (and therefore the whole downstream trajectory) does not
  // depend on how fast the labeling worker ran.
  if (harvester_.selected() < next_checkpoint_) return;
  harvester_.drain();
  // Exception isolation (DESIGN.md §10): a retrain that throws — corrupt
  // rows, a full disk under save_dir, an injected fault — must not abort the
  // search riding on this observer.  The Retrainer installs nothing until
  // both models trained, so the registry still serves the previous
  // generation and the next checkpoint simply tries again.
  try {
    retrainer_.maybe_retrain(buffer_);
  } catch (const std::exception&) {
    ++failed_retrains_;
  }
  next_checkpoint_ = harvester_.selected() +
                     static_cast<std::size_t>(std::max(1, params_.retrain.min_new_rows));
}

void ActiveLearner::on_finish(const opt::OptResult& /*result*/) {
  harvester_.drain();
  try {
    retrainer_.maybe_retrain(buffer_);
  } catch (const std::exception&) {
    ++failed_retrains_;
  }
  buffer_.flush();
}

LearnStats ActiveLearner::stats() const {
  const LabelHarvester::Stats h = harvester_.stats();
  LearnStats out;
  out.considered = h.considered;
  out.selected = h.selected;
  out.labeled = h.labeled;
  out.duplicates = h.duplicates;
  out.retrains = retrainer_.retrains();
  out.failed_retrains = failed_retrains_;
  // Error metrics per family pair: feature-row re-prediction over the
  // buffer for a gbdt pair, batched graph re-prediction over the GraphStore
  // for a pair containing a graph model (a GNN cannot predict from a replay
  // row).  Mixed pairs use the graph path too — the GBDT side falls back to
  // feature extraction inside Model::predict_graphs.
  const auto error_of = [this](const std::shared_ptr<const ml::Model>& delay,
                               const std::shared_ptr<const ml::Model>& area) {
    if (delay == nullptr || area == nullptr) return 0.0;
    if (delay->needs_graph() || area->needs_graph()) {
      return model_error_pct(*delay, *area, retrainer_.graphs());
    }
    return buffer_.size() > 0 ? model_error_pct(*delay, *area, buffer_) : 0.0;
  };
  out.base_error_pct = error_of(base_delay_model_, base_area_model_);
  out.final_error_pct = error_of(registry_->try_get(params_.retrain.delay_model),
                                 registry_->try_get(params_.retrain.area_model));
  return out;
}

LearnRunResult run(const opt::Recipe& recipe, const aig::Aig& initial,
                   const cell::Library& lib) {
  if (!recipe.learn) {
    throw std::invalid_argument("learn::run: recipe has learn=0 (use opt::run)");
  }
  if (!recipe.fallback.empty()) {
    throw std::invalid_argument(
        "learn: fallback= applies to cost=serve: runs; learn=1 evaluates locally "
        "(LiveMlCost) and has nothing to degrade from");
  }
  std::size_t prefix = 0;
  if (recipe.cost.rfind("ml:", 0) == 0) {
    prefix = 3;
  } else if (recipe.cost.rfind("gnn:", 0) == 0) {
    prefix = 4;
  } else {
    throw std::invalid_argument(
        "learn: cost spec '" + recipe.cost +
        "' is not supported with learn=1 (need ml:<model-dir> or gnn:<model-dir> so "
        "refreshed models have a registry to land in)");
  }
  // Both dialects accept an optional ":<delay>[,<area>]" model-name suffix
  // (cost_spec.hpp grammar); absent names default like the cost specs do.
  std::string rest = recipe.cost.substr(prefix);
  std::string delay_name = "delay";
  std::string area_name = "area";
  if (const std::size_t colon = rest.find(':'); colon != std::string::npos) {
    const std::string names = rest.substr(colon + 1);
    rest.resize(colon);
    const std::size_t comma = names.find(',');
    delay_name = comma == std::string::npos ? names : names.substr(0, comma);
    if (comma != std::string::npos) area_name = names.substr(comma + 1);
    if (delay_name.empty() || area_name.empty()) {
      throw std::invalid_argument("learn: cost spec '" + recipe.cost +
                                  "' has an empty model name");
    }
  }
  const fs::path model_dir = rest;
  serve::ModelRegistry registry(model_dir);
  if (registry.try_get(delay_name) == nullptr || registry.try_get(area_name) == nullptr) {
    throw std::invalid_argument("learn: " + model_dir.string() + " must contain " + delay_name +
                                " and " + area_name + " models (.gbdt/.gbdt2/.gnn)");
  }

  LearnParams params;
  params.harvest.budget = recipe.learn_budget;
  params.retrain.min_new_rows = std::max(4, recipe.learn_budget / 4);
  params.retrain.delay_model = delay_name;
  params.retrain.area_model = area_name;
  if (!recipe.learn_dir.empty()) {
    // Per-process file: replay buffers are single-writer (replay.hpp), and
    // sweeps routinely point several learn=1 runs at one learn_dir.  The
    // consumers (`aigml learn`, the novelty filter below) fold every *.rpb
    // in the directory, so the split costs nothing.
    const fs::path dir(recipe.learn_dir);
    params.replay_file = dir / ("harvest_" + std::to_string(::getpid()) + ".rpb");
    params.retrain.save_dir = recipe.learn_dir;
    if (fs::is_directory(dir)) {
      for (const auto& entry : fs::directory_iterator(dir)) {
        if (entry.is_regular_file() && entry.path().extension() == ".rpb") {
          params.known_replays.push_back(entry.path());
        }
      }
    }
  }

  ActiveLearner learner(lib, registry, params);
  // Envelope + retrain base from the datasets the served models were
  // trained on, when the operator dropped them next to the models.
  const auto base_delay = ml::Dataset::load(model_dir / "base_delay.csv");
  const auto base_area = ml::Dataset::load(model_dir / "base_area.csv");
  if (base_delay.has_value() && base_area.has_value()) {
    learner.set_base(*base_delay, *base_area);
  }

  serve::LiveMlCost evaluator(registry, delay_name, area_name);
  const std::unique_ptr<opt::Strategy> strategy = recipe.make_strategy();
  LearnRunResult out;
  out.result = strategy->run(initial, evaluator, recipe.stop_condition(), &learner);
  out.stats = learner.stats();
  out.stats.swaps_observed = evaluator.swaps_observed();
  return out;
}

}  // namespace aigml::learn
