#pragma once
// Connection — a non-blocking socket bound to an EventLoop, with owned
// read/write ByteRings (DESIGN.md §11).
//
// The transport layer only: it moves bytes between the socket and the two
// rings and reports edges upward through callbacks.  Protocol decoding,
// slot admission, and response ordering live in the owner (BatchServer /
// the load generator), which installs the callbacks.  Everything here runs
// on the loop thread.
//
// Backpressure contract: queue_write() never blocks and never fails — bytes
// land in the write ring and drain as the socket accepts them.  The *owner*
// watches write_pending() and pauses reading (pause_reading()) when a peer
// stops consuming; on_write_drained fires when the ring empties so the
// owner can resume.  This is the socket-level pushback half of the server's
// backpressure story (the other half, per-connection request caps, lives in
// the slot scheduler).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

#include "net/event_loop.hpp"
#include "net/ring.hpp"

namespace aigml::net {

class Connection : public EventHandler {
 public:
  /// Takes ownership of `fd` (sets it non-blocking) and registers with the
  /// loop for reads.
  Connection(EventLoop& loop, int fd, std::uint64_t id);
  ~Connection() override;

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool closed() const noexcept { return fd_ < 0; }
  [[nodiscard]] bool eof_seen() const noexcept { return eof_; }
  [[nodiscard]] bool read_paused() const noexcept { return paused_; }

  /// Bytes received but not yet consumed by the protocol decoder.
  [[nodiscard]] ByteRing& read_ring() noexcept { return read_ring_; }
  /// Bytes queued for the peer but not yet accepted by the socket.
  [[nodiscard]] std::size_t write_pending() const noexcept { return write_ring_.size(); }

  // Installed by the owner; all fire on the loop thread.
  std::function<void(Connection&)> on_data;           ///< read ring grew
  std::function<void(Connection&)> on_eof;            ///< peer half-closed
  std::function<void(Connection&)> on_write_drained;  ///< write ring emptied
  std::function<void(Connection&, const std::string&)> on_io_error;  ///< fatal

  /// Appends to the write ring and flushes as much as the socket accepts.
  void queue_write(std::string_view bytes);
  /// Stops/raises read interest (owner-driven backpressure).
  void pause_reading();
  void resume_reading();
  /// Deregisters from the loop and closes the fd.  Idempotent.  Does not
  /// invoke callbacks.
  void close();

  // EventHandler (loop-internal)
  void on_readable() override;
  void on_writable() override;

 private:
  void update_interest();
  void flush_writes();  ///< false alarm-safe: stops on EAGAIN
  void fail(const std::string& what);

  EventLoop& loop_;
  int fd_ = -1;
  std::uint64_t id_ = 0;
  ByteRing read_ring_;
  ByteRing write_ring_;
  bool eof_ = false;
  bool paused_ = false;
  bool want_write_ = false;
};

}  // namespace aigml::net
