#include "net/frame.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace aigml::net {

namespace {

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

std::uint16_t get_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

bool known_opcode(unsigned char op) {
  switch (static_cast<Opcode>(op)) {
    case Opcode::kPredict:
    case Opcode::kFeatures:
    case Opcode::kPing:
    case Opcode::kStats:
    case Opcode::kReload:
    case Opcode::kQuit:
    case Opcode::kValue:
    case Opcode::kText:
    case Opcode::kError:
    case Opcode::kBusy:
    case Opcode::kBye:
      return true;
  }
  return false;
}

}  // namespace

void append_frame(std::string& out, Opcode opcode, std::uint32_t request_id,
                  std::string_view payload) {
  out.reserve(out.size() + kFrameHeaderBytes + payload.size());
  out.push_back(static_cast<char>(kFrameMagic));
  out.push_back(static_cast<char>(kFrameVersion));
  out.push_back(static_cast<char>(opcode));
  out.push_back(0);  // reserved
  put_u32(out, request_id);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
}

DecodeStatus decode_header(std::string_view buffer, FrameHeader& out, std::string& error,
                           std::size_t max_payload) {
  if (buffer.empty()) return DecodeStatus::kNeedMore;
  const auto* p = reinterpret_cast<const unsigned char*>(buffer.data());
  if (p[0] != kFrameMagic) {
    error = "bad frame magic";
    return DecodeStatus::kMalformed;
  }
  if (buffer.size() < kFrameHeaderBytes) return DecodeStatus::kNeedMore;
  if (p[1] != kFrameVersion) {
    error = "unsupported frame version " + std::to_string(int{p[1]});
    return DecodeStatus::kMalformed;
  }
  if (!known_opcode(p[2])) {
    error = "unknown opcode " + std::to_string(int{p[2]});
    return DecodeStatus::kMalformed;
  }
  out.opcode = static_cast<Opcode>(p[2]);
  out.request_id = get_u32(p + 4);
  out.payload_len = get_u32(p + 8);
  if (max_payload > 0 && out.payload_len > max_payload) {
    error = "frame payload " + std::to_string(out.payload_len) + " exceeds limit " +
            std::to_string(max_payload);
    return DecodeStatus::kMalformed;
  }
  return DecodeStatus::kFrame;
}

std::string make_predict_payload(std::string_view model, std::string_view aag) {
  std::string out;
  out.reserve(2 + model.size() + aag.size());
  put_u16(out, static_cast<std::uint16_t>(model.size()));
  out.append(model);
  out.append(aag);
  return out;
}

std::string make_features_payload(std::string_view model, const std::vector<double>& row) {
  std::string out;
  out.reserve(2 + model.size() + 4 + row.size() * 8);
  put_u16(out, static_cast<std::uint16_t>(model.size()));
  out.append(model);
  put_u32(out, static_cast<std::uint32_t>(row.size()));
  for (const double v : row) put_u64(out, std::bit_cast<std::uint64_t>(v));
  return out;
}

std::string make_value_payload(double value) {
  std::string out;
  put_u64(out, std::bit_cast<std::uint64_t>(value));
  return out;
}

bool parse_predict_payload(std::string_view payload, PredictPayload& out, std::string& error) {
  if (payload.size() < 2) {
    error = "PREDICT payload shorter than its model-length prefix";
    return false;
  }
  const auto* p = reinterpret_cast<const unsigned char*>(payload.data());
  const std::size_t model_len = get_u16(p);
  if (payload.size() < 2 + model_len) {
    error = "PREDICT model name truncated";
    return false;
  }
  if (model_len == 0) {
    error = "PREDICT model name empty";
    return false;
  }
  out.model.assign(payload.substr(2, model_len));
  out.aag.assign(payload.substr(2 + model_len));
  if (out.aag.empty()) {
    error = "PREDICT payload carries no AIGER document";
    return false;
  }
  return true;
}

bool parse_features_payload(std::string_view payload, FeaturesPayload& out, std::string& error) {
  if (payload.size() < 2) {
    error = "FEATURES payload shorter than its model-length prefix";
    return false;
  }
  const auto* p = reinterpret_cast<const unsigned char*>(payload.data());
  const std::size_t model_len = get_u16(p);
  if (model_len == 0 || payload.size() < 2 + model_len + 4) {
    error = "FEATURES model name or row count truncated";
    return false;
  }
  out.model.assign(payload.substr(2, model_len));
  const std::size_t count = get_u32(p + 2 + model_len);
  const std::size_t need = 2 + model_len + 4 + count * 8;
  if (payload.size() != need) {
    error = "FEATURES row length mismatch (header says " + std::to_string(count) +
            " doubles, payload holds " + std::to_string((payload.size() - 2 - model_len - 4) / 8) +
            ")";
    return false;
  }
  out.row.resize(count);
  const auto* rows = p + 2 + model_len + 4;
  for (std::size_t i = 0; i < count; ++i) {
    out.row[i] = std::bit_cast<double>(get_u64(rows + i * 8));
  }
  return true;
}

double parse_value_payload(std::string_view payload) {
  if (payload.size() != 8) {
    throw std::runtime_error("VALUE payload must be exactly 8 bytes, got " +
                             std::to_string(payload.size()));
  }
  return std::bit_cast<double>(
      get_u64(reinterpret_cast<const unsigned char*>(payload.data())));
}

}  // namespace aigml::net
