#pragma once
// Length-prefixed binary protocol spoken by serve::BatchServer, BinClient,
// and the load generator (DESIGN.md §11).  Wire format, little-endian:
//
//   header (12 bytes):
//     u8   magic    = 0xAB   (never a valid first byte of the text protocol,
//                             so a server can sniff the dialect on byte one)
//     u8   version  = 1
//     u8   opcode
//     u8   reserved = 0
//     u32  request_id        (echoed in the response; responses may arrive
//                             out of order, the id is how clients re-match)
//     u32  payload_len
//   payload (payload_len bytes):
//     PREDICT   u16 model_len, model bytes, rest = AIGER text (no escaping —
//               length-prefixing makes the newline folding of the text
//               protocol unnecessary)
//     FEATURES  u16 model_len, model bytes, u32 count, count * f64 bits
//     VALUE     f64 bits (the prediction, exact — no decimal round trip)
//     TEXT/ERROR/BUSY  UTF-8 message
//     others    empty
//
// Doubles travel as their IEEE-754 bit pattern (via u64), so a value is
// bit-identical on both ends by construction — the binary analogue of the
// text protocol's %.17g round trip.
//
// Framing errors (bad magic mid-stream, unknown version, oversized payload)
// are not recoverable — the stream position is lost — so the contract is:
// respond ERROR once, then drop the connection.  Payload parse errors on a
// well-framed request (truncated FEATURES row, unknown opcode) keep the
// connection alive: the server answers ERROR with the request's id.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace aigml::net {

inline constexpr unsigned char kFrameMagic = 0xAB;
inline constexpr unsigned char kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 12;

enum class Opcode : unsigned char {
  // requests
  kPredict = 0x01,
  kFeatures = 0x02,
  kPing = 0x03,
  kStats = 0x04,
  kReload = 0x05,
  kQuit = 0x06,
  // responses
  kValue = 0x81,
  kText = 0x82,
  kError = 0x83,
  kBusy = 0x84,
  kBye = 0x85,
};

struct FrameHeader {
  Opcode opcode = Opcode::kPing;
  std::uint32_t request_id = 0;
  std::uint32_t payload_len = 0;
};

enum class DecodeStatus {
  kNeedMore,   ///< not enough buffered bytes for a verdict
  kFrame,      ///< header decoded; payload_len bytes follow the header
  kMalformed,  ///< framing broken (magic/version/size) — drop the stream
};

/// Appends one complete frame (header + payload) to `out`.
void append_frame(std::string& out, Opcode opcode, std::uint32_t request_id,
                  std::string_view payload);

/// Inspects the head of `buffer`.  On kMalformed, `error` says why.
/// `max_payload` bounds payload_len (0 = unbounded).
[[nodiscard]] DecodeStatus decode_header(std::string_view buffer, FrameHeader& out,
                                         std::string& error, std::size_t max_payload);

// ---- payload builders / parsers ---------------------------------------------

[[nodiscard]] std::string make_predict_payload(std::string_view model, std::string_view aag);
[[nodiscard]] std::string make_features_payload(std::string_view model,
                                                const std::vector<double>& row);
[[nodiscard]] std::string make_value_payload(double value);

struct PredictPayload {
  std::string model;
  std::string aag;
};
struct FeaturesPayload {
  std::string model;
  std::vector<double> row;
};

/// Parsers return false and set `error` on a malformed payload.
[[nodiscard]] bool parse_predict_payload(std::string_view payload, PredictPayload& out,
                                         std::string& error);
[[nodiscard]] bool parse_features_payload(std::string_view payload, FeaturesPayload& out,
                                          std::string& error);
/// Throws std::runtime_error when the payload is not exactly 8 bytes.
[[nodiscard]] double parse_value_payload(std::string_view payload);

}  // namespace aigml::net
