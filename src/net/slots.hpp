#pragma once
// SlotScheduler — continuous-batching admission control (DESIGN.md §11).
//
// A *slot* is one admitted request in flight through the PredictService:
// acquired when the server submits the decoded request, released when its
// completion comes back.  Because admitted requests join the service queue
// immediately (the "immediate" submit path skips the coalescing window),
// the in-flight batch keeps absorbing new arrivals for as long as slots are
// free — batching emerges from service occupancy, not from a timer.
//
// Fairness: connections with decodable work wait in a round-robin ready
// ring and are advanced one request per visit, so a client that pipelines
// hundreds of requests cannot starve one that sends a single request —
// it gets re-queued behind everyone else after every admission.  When the
// slots are exhausted, connections park in a separate FIFO and re-enter the
// ready ring as completions free slots.
//
// Loop-thread only; no locks.  The aggregate counters feed the STATS
// "slots" block.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>

namespace aigml::net {

struct SlotStats {
  std::size_t total = 0;           ///< configured slot count
  std::size_t busy = 0;            ///< requests currently in flight
  std::size_t peak_busy = 0;       ///< high-water mark of busy
  std::uint64_t admitted = 0;      ///< requests that ever acquired a slot
  std::uint64_t completed = 0;     ///< slots released
  std::uint64_t shed_conn_cap = 0; ///< requests answered BUSY (per-conn cap)
  std::uint64_t parked_waits = 0;  ///< admissions that had to wait for a slot
};

class SlotScheduler {
 public:
  explicit SlotScheduler(std::size_t total) { stats_.total = total == 0 ? 1 : total; }

  [[nodiscard]] bool acquire() noexcept {
    if (stats_.busy >= stats_.total) return false;
    ++stats_.busy;
    ++stats_.admitted;
    if (stats_.busy > stats_.peak_busy) stats_.peak_busy = stats_.busy;
    return true;
  }

  void release() noexcept {
    if (stats_.busy > 0) --stats_.busy;
    ++stats_.completed;
  }

  [[nodiscard]] bool exhausted() const noexcept { return stats_.busy >= stats_.total; }

  // ---- round-robin ready ring (caller guarantees no duplicate ids) ----------
  void push_ready(std::uint64_t conn_id) { ready_.push_back(conn_id); }
  [[nodiscard]] std::optional<std::uint64_t> pop_ready() {
    if (ready_.empty()) return std::nullopt;
    const std::uint64_t id = ready_.front();
    ready_.pop_front();
    return id;
  }
  [[nodiscard]] bool has_ready() const noexcept { return !ready_.empty(); }

  // ---- park FIFO: decoded requests waiting for a free slot ------------------
  void park(std::uint64_t conn_id) {
    parked_.push_back(conn_id);
    ++stats_.parked_waits;
  }
  /// Re-park at the head without re-counting the wait (used when an unpark
  /// races a slot away — the connection keeps its place in line).
  void park_front(std::uint64_t conn_id) { parked_.push_front(conn_id); }
  [[nodiscard]] std::optional<std::uint64_t> pop_parked() {
    if (parked_.empty()) return std::nullopt;
    const std::uint64_t id = parked_.front();
    parked_.pop_front();
    return id;
  }
  [[nodiscard]] bool has_parked() const noexcept { return !parked_.empty(); }

  void count_conn_cap_shed() noexcept { ++stats_.shed_conn_cap; }

  [[nodiscard]] const SlotStats& stats() const noexcept { return stats_; }

 private:
  SlotStats stats_;
  std::deque<std::uint64_t> ready_;
  std::deque<std::uint64_t> parked_;
};

}  // namespace aigml::net
