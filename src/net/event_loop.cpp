#include "net/event_loop.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#if defined(__linux__)
#include <sys/epoll.h>
#define AIGML_HAVE_EPOLL 1
#else
#define AIGML_HAVE_EPOLL 0
#endif

#include "util/fault.hpp"

namespace aigml::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

void set_nonblocking_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("event loop fcntl O_NONBLOCK");
  }
  (void)::fcntl(fd, F_SETFD, FD_CLOEXEC);
}

constexpr std::uint32_t kReadableBit = 1;
constexpr std::uint32_t kWritableBit = 2;

}  // namespace

EventLoop::Backend EventLoop::default_backend() {
  const char* env = std::getenv("AIGML_NET_BACKEND");
  if (env != nullptr) {
    if (std::strcmp(env, "poll") == 0) return Backend::kPoll;
    if (std::strcmp(env, "epoll") == 0) return Backend::kEpoll;
  }
#if AIGML_HAVE_EPOLL
  return Backend::kEpoll;
#else
  return Backend::kPoll;
#endif
}

EventLoop::EventLoop(Backend backend) : backend_(backend) {
#if AIGML_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) throw_errno("epoll_create1");
  }
#else
  backend_ = Backend::kPoll;
#endif
  if (::pipe(wake_pipe_) != 0) {
    throw_errno("event loop pipe");
  }
  set_nonblocking_cloexec(wake_pipe_[0]);
  set_nonblocking_cloexec(wake_pipe_[1]);
#if AIGML_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = EPOLLIN;  // level-triggered on purpose: never lose a wake
    ev.data.fd = wake_pipe_[0];
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_pipe_[0], &ev) != 0) {
      throw_errno("epoll_ctl add wake pipe");
    }
  }
#endif
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

void EventLoop::apply_interest(int fd, const Entry& entry, [[maybe_unused]] bool adding) {
#if AIGML_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    // Edge-triggered: one notification per readiness edge; Connection code
    // drains to EAGAIN, so no edge is ever left half-consumed.
    ev.events = EPOLLET;
    if (entry.want_read) ev.events |= EPOLLIN | EPOLLRDHUP;
    if (entry.want_write) ev.events |= EPOLLOUT;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, adding ? EPOLL_CTL_ADD : EPOLL_CTL_MOD, fd, &ev) != 0) {
      throw_errno("epoll_ctl");
    }
  }
#endif
  // Poll backend: interest is read out of handlers_ at wait time.
}

void EventLoop::add(int fd, bool want_read, bool want_write, EventHandler* handler) {
  Entry entry{handler, want_read, want_write};
  apply_interest(fd, entry, /*adding=*/true);
  handlers_[fd] = entry;
}

void EventLoop::modify(int fd, bool want_read, bool want_write) {
  const auto it = handlers_.find(fd);
  if (it == handlers_.end()) return;
  if (it->second.want_read == want_read && it->second.want_write == want_write) return;
  it->second.want_read = want_read;
  it->second.want_write = want_write;
  apply_interest(fd, it->second, /*adding=*/false);
}

void EventLoop::remove(int fd) {
  if (handlers_.erase(fd) == 0) return;
#if AIGML_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
}

void EventLoop::wake() {
  const char byte = 1;
  // A full pipe already guarantees a pending wake; EAGAIN is success here.
  while (::write(wake_pipe_[1], &byte, 1) < 0 && errno == EINTR) {
  }
}

void EventLoop::drain_wake_pipe() {
  char sink[256];
  while (::read(wake_pipe_[0], sink, sizeof(sink)) > 0) {
  }
}

void EventLoop::post(std::function<void()> fn) {
  {
    const std::lock_guard lock(post_mutex_);
    posted_.push_back(std::move(fn));
  }
  wake();
}

void EventLoop::post_after(int delay_ms, std::function<void()> fn) {
  {
    const std::lock_guard lock(post_mutex_);
    timers_.push_back(
        {std::chrono::steady_clock::now() + std::chrono::milliseconds(delay_ms), std::move(fn)});
  }
  wake();
}

void EventLoop::stop() {
  {
    const std::lock_guard lock(post_mutex_);
    stop_requested_ = true;
  }
  wake();
}

void EventLoop::run_posted() {
  // Swap out under the lock, run outside it: a posted task may post again.
  std::vector<std::function<void()>> ready;
  {
    const std::lock_guard lock(post_mutex_);
    ready.swap(posted_);
    if (!timers_.empty()) {
      const auto now = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < timers_.size();) {
        if (timers_[i].when <= now) {
          ready.push_back(std::move(timers_[i].fn));
          timers_[i] = std::move(timers_.back());
          timers_.pop_back();
        } else {
          ++i;
        }
      }
    }
  }
  for (auto& fn : ready) fn();
}

int EventLoop::next_timeout_ms() {
  const std::lock_guard lock(post_mutex_);
  if (stop_requested_ || !posted_.empty()) return 0;
  if (timers_.empty()) return -1;
  auto soonest = timers_.front().when;
  for (const Timer& t : timers_) soonest = std::min(soonest, t.when);
  const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
      soonest - std::chrono::steady_clock::now());
  return static_cast<int>(std::max<long long>(0, remaining.count() + 1));
}

int EventLoop::wait_epoll([[maybe_unused]] int timeout_ms,
                          [[maybe_unused]] std::vector<std::pair<int, std::uint32_t>>& out) {
#if AIGML_HAVE_EPOLL
  epoll_event events[128];
  const int n = ::epoll_wait(epoll_fd_, events, 128, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    throw_errno("epoll_wait");
  }
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wake_pipe_[0]) {
      drain_wake_pipe();
      continue;
    }
    std::uint32_t bits = 0;
    // Error / hangup conditions surface as readable: the next read reports
    // the error or EOF, which is exactly how handlers learn about them.
    if (events[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP)) bits |= kReadableBit;
    if (events[i].events & EPOLLOUT) bits |= kWritableBit;
    out.emplace_back(fd, bits);
  }
  return n;
#else
  return 0;
#endif
}

int EventLoop::wait_poll(int timeout_ms, std::vector<std::pair<int, std::uint32_t>>& out) {
  std::vector<pollfd> pfds;
  pfds.reserve(handlers_.size() + 1);
  pfds.push_back({wake_pipe_[0], POLLIN, 0});
  for (const auto& [fd, entry] : handlers_) {
    short events = 0;
    if (entry.want_read) events |= POLLIN;
    if (entry.want_write) events |= POLLOUT;
    if (events != 0) pfds.push_back({fd, events, 0});
  }
  const int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    throw_errno("poll");
  }
  for (const pollfd& pfd : pfds) {
    if (pfd.revents == 0) continue;
    if (pfd.fd == wake_pipe_[0]) {
      drain_wake_pipe();
      continue;
    }
    std::uint32_t bits = 0;
    if (pfd.revents & (POLLIN | POLLERR | POLLHUP)) bits |= kReadableBit;
    if (pfd.revents & POLLOUT) bits |= kWritableBit;
    out.emplace_back(pfd.fd, bits);
  }
  return n;
}

void EventLoop::dispatch(int fd, bool readable, bool writable) {
  // Re-look-up before each callback: the previous one may have removed us.
  if (readable) {
    const auto it = handlers_.find(fd);
    if (it != handlers_.end() && it->second.want_read) it->second.handler->on_readable();
  }
  if (writable) {
    const auto it = handlers_.find(fd);
    if (it != handlers_.end() && it->second.want_write) it->second.handler->on_writable();
  }
}

void EventLoop::dispatch_spurious() {
  // Synthesized no-data readables for every registered fd: handlers must
  // shrug (read -> EAGAIN -> return).  Snapshot first — handlers mutate the
  // registration table.
  std::vector<int> fds;
  fds.reserve(handlers_.size());
  for (const auto& [fd, entry] : handlers_) {
    if (entry.want_read) fds.push_back(fd);
  }
  for (const int fd : fds) dispatch(fd, /*readable=*/true, /*writable=*/false);
}

void EventLoop::run() {
  loop_thread_ = std::this_thread::get_id();
  std::vector<std::pair<int, std::uint32_t>> events;
  while (true) {
    {
      const std::lock_guard lock(post_mutex_);
      if (stop_requested_) {
        stop_requested_ = false;
        break;
      }
    }
    events.clear();
    const int timeout_ms = next_timeout_ms();
    if (backend_ == Backend::kEpoll) {
      (void)wait_epoll(timeout_ms, events);
    } else {
      (void)wait_poll(timeout_ms, events);
    }
    for (const auto& [fd, bits] : events) {
      dispatch(fd, (bits & kReadableBit) != 0, (bits & kWritableBit) != 0);
    }
    if (fault::fire(fault::Site::kNetEpollSpurious)) dispatch_spurious();
    run_posted();
  }
  loop_thread_ = std::thread::id();
}

}  // namespace aigml::net
