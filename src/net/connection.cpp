#include "net/connection.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace aigml::net {

// Callback discipline: a callback may call close() on this connection (the
// owner's error/shed paths do), but must not destroy the object until
// control returns to the loop — BatchServer parks dying connections in a
// graveyard cleared via loop_.post().  close() itself only releases the fd
// and deregisters, so members stay valid for the rest of the method.

Connection::Connection(EventLoop& loop, int fd, std::uint64_t id)
    : loop_(loop), fd_(fd), id_(id) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  loop_.add(fd_, /*want_read=*/true, /*want_write=*/false, this);
}

Connection::~Connection() { close(); }

void Connection::close() {
  if (fd_ < 0) return;
  loop_.remove(fd_);
  ::close(fd_);
  fd_ = -1;
}

void Connection::update_interest() {
  if (fd_ < 0) return;
  loop_.modify(fd_, /*want_read=*/!paused_ && !eof_, /*want_write=*/want_write_);
}

void Connection::pause_reading() {
  if (paused_) return;
  paused_ = true;
  update_interest();
}

void Connection::resume_reading() {
  if (!paused_) return;
  paused_ = false;
  update_interest();
  // Bytes may already be buffered in the kernel with the read edge long
  // gone (edge-triggered): poke the read path instead of waiting for one.
  if (fd_ >= 0) on_readable();
}

void Connection::fail(const std::string& what) {
  close();
  if (on_io_error) on_io_error(*this, what);
}

void Connection::on_readable() {
  if (fd_ < 0 || paused_ || eof_) return;
  bool got_data = false;
  char chunk[16384];
  while (true) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      read_ring_.append(chunk, static_cast<std::size_t>(n));
      got_data = true;
      continue;
    }
    if (n == 0) {
      eof_ = true;
      update_interest();
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    fail(std::string("recv: ") + std::strerror(errno));
    return;
  }
  // Callbacks last: either may close() this connection.
  if (got_data && on_data) {
    on_data(*this);
    if (fd_ < 0) return;
  }
  if (eof_ && on_eof) on_eof(*this);
}

void Connection::queue_write(std::string_view bytes) {
  if (fd_ < 0) return;
  write_ring_.append(bytes);
  flush_writes();
}

void Connection::flush_writes() {
  if (fd_ < 0) return;
  bool drained = false;
  while (!write_ring_.empty()) {
    const std::string_view pending = write_ring_.readable();
    const ssize_t n = ::send(fd_, pending.data(), pending.size(), MSG_NOSIGNAL);
    if (n > 0) {
      write_ring_.consume(static_cast<std::size_t>(n));
      if (write_ring_.empty()) drained = true;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!want_write_) {
        want_write_ = true;
        update_interest();
      }
      return;
    }
    fail(std::string("send: ") + std::strerror(errno));
    return;
  }
  if (want_write_) {
    want_write_ = false;
    update_interest();
  }
  if (drained && on_write_drained) on_write_drained(*this);
}

void Connection::on_writable() { flush_writes(); }

}  // namespace aigml::net
