#pragma once
// EventLoop — the single-threaded reactor under serve::BatchServer and the
// load generator (DESIGN.md §11).
//
// One thread owns the loop and every handler registered with it; all
// fd-state mutation happens on that thread, so handlers need no locks.  The
// only thread-safe entry points are post() / post_after() / stop(), which
// enqueue work under a mutex and wake the loop through a self-pipe.
//
// Two backends behind one interface:
//   kEpoll  edge-triggered epoll (Linux).  Handlers must drain their fd to
//           EAGAIN on every notification — a partial read loses the rest of
//           the data until the *next* edge.
//   kPoll   level-triggered poll(2), the portable fallback.  Drain-to-EAGAIN
//           handlers are correct here too (they simply never rely on the
//           level re-notification), so connection code is backend-agnostic.
// The default is epoll where available; AIGML_NET_BACKEND=poll forces the
// fallback (CI exercises both).
//
// Fault site net.epoll_spurious (util/fault): when armed, a wait round also
// dispatches a synthesized readable event to every registered handler —
// the classic spurious-wakeup contract (epoll may over-report; handlers
// must treat EAGAIN as "nothing there" and return).

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace aigml::net {

/// Implemented by anything registered with EventLoop::add.  Callbacks run
/// on the loop thread.
class EventHandler {
 public:
  virtual ~EventHandler() = default;
  virtual void on_readable() = 0;
  virtual void on_writable() = 0;
};

class EventLoop {
 public:
  enum class Backend { kEpoll, kPoll };

  /// epoll on Linux, poll elsewhere; AIGML_NET_BACKEND=poll|epoll overrides.
  [[nodiscard]] static Backend default_backend();

  explicit EventLoop(Backend backend = default_backend());
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  [[nodiscard]] Backend backend() const noexcept { return backend_; }

  // ---- fd registration (loop thread only) -----------------------------------
  void add(int fd, bool want_read, bool want_write, EventHandler* handler);
  void modify(int fd, bool want_read, bool want_write);
  void remove(int fd);
  [[nodiscard]] std::size_t num_fds() const noexcept { return handlers_.size(); }

  // ---- loop control ---------------------------------------------------------
  /// Runs until stop().  Call from exactly one thread.
  void run();
  /// Thread-safe: makes run() return after the current iteration.
  void stop();
  /// Thread-safe: runs `fn` on the loop thread on the next iteration.
  void post(std::function<void()> fn);
  /// Thread-safe: runs `fn` on the loop thread once `delay_ms` elapsed.
  void post_after(int delay_ms, std::function<void()> fn);
  [[nodiscard]] bool in_loop_thread() const noexcept {
    return std::this_thread::get_id() == loop_thread_;
  }

 private:
  struct Entry {
    EventHandler* handler = nullptr;
    bool want_read = false;
    bool want_write = false;
  };
  struct Timer {
    std::chrono::steady_clock::time_point when;
    std::function<void()> fn;
  };

  void wake();
  void drain_wake_pipe();
  void run_posted();
  [[nodiscard]] int next_timeout_ms();
  void apply_interest(int fd, const Entry& entry, bool adding);
  void dispatch(int fd, bool readable, bool writable);
  void dispatch_spurious();
  [[nodiscard]] int wait_epoll(int timeout_ms, std::vector<std::pair<int, std::uint32_t>>& out);
  [[nodiscard]] int wait_poll(int timeout_ms, std::vector<std::pair<int, std::uint32_t>>& out);

  Backend backend_;
  int epoll_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::unordered_map<int, Entry> handlers_;
  std::thread::id loop_thread_;

  std::mutex post_mutex_;
  std::vector<std::function<void()>> posted_;
  std::vector<Timer> timers_;  ///< unsorted; scanned per iteration (few timers)
  bool stop_requested_ = false;
};

}  // namespace aigml::net
