#pragma once
// ByteRing — the owned read/write buffer of a net::Connection.
//
// Logically a byte ring: producers append at the tail, consumers pop from
// the head, and storage is reclaimed as the head advances.  Physically it
// is a compacting deque over one contiguous std::string, because both
// protocol decoders (newline scan, length-prefixed frame parse) want a
// contiguous readable() span — a wrapped circular buffer would force every
// parser to stitch two spans back together.  Compaction is amortized: the
// consumed prefix is only memmoved out when it dominates the buffer, so
// per-byte cost stays O(1).

#include <algorithm>
#include <cstddef>
#include <string>
#include <string_view>

namespace aigml::net {

class ByteRing {
 public:
  /// Unconsumed bytes, contiguous, valid until the next append/consume.
  [[nodiscard]] std::string_view readable() const noexcept {
    return std::string_view(buffer_).substr(head_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size() - head_; }
  [[nodiscard]] bool empty() const noexcept { return head_ == buffer_.size(); }

  void append(std::string_view bytes) {
    maybe_compact();
    buffer_.append(bytes);
  }
  void append(const char* data, std::size_t n) { append(std::string_view(data, n)); }

  /// Drops `n` bytes from the head (n must be <= size()).
  void consume(std::size_t n) noexcept {
    head_ = std::min(head_ + n, buffer_.size());
    if (head_ == buffer_.size()) {
      buffer_.clear();
      head_ = 0;
    }
  }

  void clear() noexcept {
    buffer_.clear();
    head_ = 0;
  }

 private:
  void maybe_compact() {
    // Reclaim the consumed prefix once it is both large and the majority of
    // the allocation — O(1) amortized, and small buffers never memmove.
    if (head_ >= 4096 && head_ * 2 >= buffer_.size()) {
      buffer_.erase(0, head_);
      head_ = 0;
    }
  }

  std::string buffer_;
  std::size_t head_ = 0;
};

}  // namespace aigml::net
