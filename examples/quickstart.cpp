// Quickstart: build a circuit, optimize it, map it to cells, time it.
//
//   $ ./quickstart
//
// Walks the core API end to end:
//   1. construct an AIG with the builder operators,
//   2. inspect proxy metrics (levels / node count),
//   3. apply ABC-style optimization scripts,
//   4. technology-map onto the built-in 130nm-flavoured library,
//   5. run static timing analysis and print the critical path.

#include <cstdio>

#include "aig/aig.hpp"
#include "aig/analysis.hpp"
#include "aig/sim.hpp"
#include "celllib/library.hpp"
#include "gen/circuits.hpp"
#include "mapper/mapper.hpp"
#include "sta/sta.hpp"
#include "transforms/scripts.hpp"

using namespace aigml;

int main() {
  // 1. Build a 4-bit x 4-bit multiplier-accumulator slice by hand.
  aig::Aig g;
  const auto a = gen::add_input_word(g, 4, "a");
  const auto b = gen::add_input_word(g, 4, "b");
  const auto c = gen::add_input_word(g, 8, "c");
  const auto product = gen::array_multiply(g, a, b);
  const auto sum = gen::ripple_add(g, product, c);
  gen::add_output_word(g, sum, "mac");

  std::printf("built MAC4: %zu inputs, %zu outputs, %zu AND nodes, %u levels\n",
              g.num_inputs(), g.num_outputs(), g.num_ands(), aig::aig_level(g));

  // 2. Optimize with a classic script (balance; rewrite; refactor; balance).
  aig::Aig optimized = g;
  for (const char* step : {"b", "rw", "rf", "b"}) {
    optimized = transforms::apply_primitive(step, optimized);
  }
  std::printf("after b;rw;rf;b: %zu AND nodes, %u levels\n", optimized.num_ands(),
              aig::aig_level(optimized));

  // 3. The transform is verified equivalence-preserving.
  std::printf("equivalence check: %s\n",
              aig::equivalent(g, optimized) ? "PASS" : "FAIL");

  // 4. Map to standard cells and run STA.
  const auto& lib = cell::mini_sky130();
  map::MapStats stats;
  const auto netlist = map::map_to_cells(optimized, lib, {}, &stats);
  const auto timing = sta::run_sta(netlist, lib, {});
  std::printf("mapped: %zu gates (%zu inverters added), %.1f um2\n", netlist.num_gates(),
              stats.num_inverters_added, timing.total_area_um2);

  // 5. Report.
  std::printf("%s", sta::timing_report(netlist, lib, timing).c_str());
  return 0;
}
