// Example: train a post-mapping delay predictor for your own design.
//
//   $ ./train_timing_model
//
// Demonstrates the paper's data pipeline on a single design: generate
// labeled AIG variants (map+STA ground truth), extract Table II features,
// train the GBDT, inspect accuracy and feature importance, and save the
// model for later use with MlCost / an optimization flow.

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "features/features.hpp"
#include "flow/datagen.hpp"
#include "gen/circuits.hpp"
#include "ml/gbdt.hpp"
#include "util/stats.hpp"

using namespace aigml;

int main() {
  const auto& lib = cell::mini_sky130();

  // Any combinational AIG works; here, an 8-bit carry-lookahead adder.
  const aig::Aig design = gen::adder_cla(8);
  std::printf("design: cla8 (%zu ANDs)\n", design.num_ands());

  // 1. Generate labeled variants (this is the expensive, offline step).
  flow::DataGenParams params;
  params.num_variants = 300;
  params.seed = 2026;
  std::printf("generating %d labeled variants...\n", params.num_variants);
  const auto data = flow::generate_dataset(design, "cla8", lib, params);
  std::printf("labeled %zu variants in %.1f s\n", data.unique_variants,
              data.generation_seconds);

  // 2. Split 80/20 (interleaved) and train.
  std::vector<std::size_t> train_rows, test_rows;
  for (std::size_t i = 0; i < data.delay.num_rows(); ++i) {
    (i % 5 == 4 ? test_rows : train_rows).push_back(i);
  }
  const auto train = data.delay.subset(train_rows);
  const auto test = data.delay.subset(test_rows);

  ml::GbdtParams gbdt_params;
  gbdt_params.num_trees = 400;
  gbdt_params.max_depth = 6;
  gbdt_params.learning_rate = 0.08;
  ml::TrainLog log;
  const auto model = ml::GbdtModel::train(train, gbdt_params, &test, &log);
  std::printf("trained %zu trees in %.2f s\n", model.num_trees(), log.train_seconds);

  // 3. Accuracy on held-out variants.
  const auto preds = model.predict_all(test);
  const auto err = absolute_percent_error(preds, test.labels());
  std::printf("held-out: RMSE %.1f ps, mean %%err %.2f%%, max %%err %.2f%%, R^2 %.3f\n",
              ml::rmse(preds, test.labels()), err.mean_pct, err.max_pct,
              ml::r_squared(preds, test.labels()));

  // 4. What did the model learn?  (gain-based importance, top 5)
  const auto importance = model.feature_importance();
  const auto& names = features::feature_names();
  std::vector<std::size_t> order(importance.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return importance[x] > importance[y]; });
  std::printf("top features:\n");
  for (std::size_t rank = 0; rank < 5 && rank < order.size(); ++rank) {
    std::printf("  %-38s %5.1f%%\n", names[order[rank]].c_str(),
                importance[order[rank]] * 100.0);
  }

  // 5. Persist for reuse (e.g. with opt::MlCost in an SA flow).
  const auto path = std::filesystem::temp_directory_path() / "cla8_delay.gbdt";
  model.save(path);
  const auto reloaded = ml::GbdtModel::load(path);
  std::printf("model saved to %s and reloaded (%zu trees)\n", path.string().c_str(),
              reloaded.num_trees());
  return 0;
}
