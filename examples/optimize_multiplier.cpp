// Example: why proxy metrics mislead — the paper's motivating scenario.
//
//   $ ./optimize_multiplier
//
// Optimizes a multiplier with proxy-guided SA and ground-truth-guided SA,
// then maps both results and compares the *actual* post-mapping delay/area.
// The proxy flow "wins" on its own metric (levels/nodes) yet loses after
// mapping — the miscorrelation that motivates ML-based timing prediction.

#include <cstdio>

#include "aig/analysis.hpp"
#include "aig/sim.hpp"
#include "gen/circuits.hpp"
#include "opt/recipe.hpp"

using namespace aigml;

int main() {
  const auto& lib = cell::mini_sky130();
  const aig::Aig design = gen::multiplier(6);
  std::printf("design: 6x6 array multiplier (%zu ANDs, %u levels)\n\n", design.num_ands(),
              aig::aig_level(design));

  // The two flows differ by exactly one recipe key: the cost spec.
  opt::Recipe recipe;
  recipe.iterations = 120;
  recipe.weight_delay = 1.0;
  recipe.weight_area = 0.3;
  recipe.seed = 99;

  opt::CostContext ctx;
  ctx.library = &lib;
  opt::GroundTruthCost scorer(lib);  // used only for final, fair scoring

  // Flow A: proxy-guided.
  recipe.cost = "proxy";
  std::printf("recipe: %s\n", recipe.to_string().c_str());
  const auto proxy_run = opt::run(recipe, design, ctx);
  const auto proxy_truth = scorer.evaluate(proxy_run.best);
  std::printf("[proxy-guided]        best proxies: %u levels / %zu nodes\n",
              aig::aig_level(proxy_run.best), proxy_run.best.num_ands());
  std::printf("                      actual mapped: %.1f ps, %.1f um2 (%.2f s total)\n",
              proxy_truth.delay, proxy_truth.area, proxy_run.total_seconds);

  // Flow B: ground-truth-guided (slow but honest).
  recipe.cost = "gt";
  std::printf("recipe: %s\n", recipe.to_string().c_str());
  const auto gt_run = opt::run(recipe, design, ctx);
  const auto gt_truth = scorer.evaluate(gt_run.best);
  std::printf("[ground-truth-guided] best proxies: %u levels / %zu nodes\n",
              aig::aig_level(gt_run.best), gt_run.best.num_ands());
  std::printf("                      actual mapped: %.1f ps, %.1f um2 (%.2f s total)\n",
              gt_truth.delay, gt_truth.area, gt_run.total_seconds);

  const double delay_gain = (proxy_truth.delay - gt_truth.delay) / proxy_truth.delay * 100.0;
  std::printf("\nground-truth guidance improved actual delay by %+.1f%% while the proxy flow\n"
              "chased levels/nodes; it cost %.1fx the runtime — the gap the ML flow closes.\n",
              delay_gain, gt_run.total_seconds / proxy_run.total_seconds);

  // Both flows preserve the function, of course.
  std::printf("equivalence: proxy %s, ground-truth %s\n",
              aig::equivalent(design, proxy_run.best) ? "PASS" : "FAIL",
              aig::equivalent(design, gt_run.best) ? "PASS" : "FAIL");
  return 0;
}
