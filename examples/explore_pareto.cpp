// Example: design-space exploration with the three optimization flows.
//
//   $ ./explore_pareto
//
// A miniature Fig. 5: run the SA hyperparameter sweep on one design under
// the baseline (proxy), ground-truth (map+STA), and ML (predictor) cost
// functions, then compare the resulting delay/area Pareto fronts and the
// time each flow took.

#include <cstdio>

#include "flow/datagen.hpp"
#include "gen/circuits.hpp"
#include "ml/gbdt.hpp"
#include "opt/sweep.hpp"

using namespace aigml;

namespace {

void show(const char* name, const opt::SweepResult& result) {
  std::printf("\n[%s] %zu runs in %.1f s; front:\n", name, result.runs.size(),
              result.total_seconds);
  for (const auto& p : result.front) {
    std::printf("   delay %8.1f ps   area %9.1f um2\n", p.delay, p.area);
  }
}

}  // namespace

int main() {
  const auto& lib = cell::mini_sky130();
  const aig::Aig design = gen::alu(6);
  std::printf("design: alu6 (%zu ANDs)\n", design.num_ands());

  // Train the predictor on this design's own variants — the "known design"
  // usage mode; bench/fig5_pareto exercises the unseen-design mode.
  flow::DataGenParams gen_params;
  gen_params.num_variants = 200;
  std::printf("training the delay/area predictors on %d labeled variants...\n",
              gen_params.num_variants);
  const auto data = flow::generate_dataset(design, "alu6", lib, gen_params);
  ml::GbdtParams gbdt_params;
  gbdt_params.num_trees = 300;
  gbdt_params.max_depth = 6;
  const auto delay_model = ml::GbdtModel::train(data.delay, gbdt_params);
  const auto area_model = ml::GbdtModel::train(data.area, gbdt_params);

  opt::SweepConfig config;
  config.iterations = 60;
  config.weight_pairs = {{1.0, 0.0}, {1.0, 0.5}, {0.5, 1.0}};
  config.decays = {0.95};

  // One CostContext serves all three flows: the library backs "gt" (and the
  // final re-scoring), the in-memory models back "ml".  Each recipe list
  // runs in parallel on the process-default thread pool (num_threads = 0) —
  // results are identical to a serial sweep.
  opt::CostContext ctx;
  ctx.library = &lib;
  ctx.delay_model = opt::borrow_model(delay_model);
  ctx.area_model = opt::borrow_model(area_model);

  const auto base = opt::run_sweep(design, config.to_recipes(), ctx, 0);
  show("baseline: proxy metrics", base);

  config.cost = "gt";
  const auto truth = opt::run_sweep(design, config.to_recipes(), ctx, 0);
  show("ground truth: map+STA each iteration", truth);

  config.cost = "ml";
  const auto mlf = opt::run_sweep(design, config.to_recipes(), ctx, 0);
  show("ml flow: features + GBDT inference", mlf);

  // Iso-area comparison at the baseline front's area budgets.
  std::printf("\niso-area best delay (ps):\n");
  std::printf("%-14s %-12s %-14s %-10s\n", "area budget", "baseline", "ground-truth", "ml");
  for (const auto& p : base.front) {
    std::printf("%-14.1f %-12.1f %-14.1f %-10.1f\n", p.area,
                opt::delay_at_area(base.front, p.area), opt::delay_at_area(truth.front, p.area),
                opt::delay_at_area(mlf.front, p.area));
  }
  return 0;
}
