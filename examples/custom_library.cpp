// Example: define a custom standard-cell library and compare mappings.
//
//   $ ./custom_library
//
// Shows the minilib text format, loading a user-defined library, and how
// library choice changes mapped delay/area for the same logic.  The custom
// library below is deliberately inverter-poor and NAND-centric, like a
// minimal ASIC kit.

#include <cstdio>

#include "aig/sim.hpp"
#include "celllib/library.hpp"
#include "gen/circuits.hpp"
#include "mapper/mapper.hpp"
#include "netlist/netlist.hpp"
#include "sta/sta.hpp"

using namespace aigml;

int main() {
  // A 4-cell NAND-only kit, in the minilib text format (truth tables are
  // hex over the low 2^n bits; delays ps; caps fF; area um2).
  const std::string minimal_kit = R"(minilib nand_kit
cell INV_K inputs 1 function 0x1 area 3.0 cap 2.0 intrinsic 40 resistance 3.0
cell NAND2_K inputs 2 function 0x7 area 4.2 cap 2.3 intrinsic 52 resistance 3.6
cell NAND3_K inputs 3 function 0x7f area 6.0 cap 2.5 intrinsic 64 resistance 4.1
cell NAND4_K inputs 4 function 0x7fff area 7.8 cap 2.7 intrinsic 76 resistance 4.6
end
)";
  const cell::Library kit = cell::Library::from_text(minimal_kit);
  std::printf("loaded '%s' with %zu cells\n", kit.name().c_str(), kit.cells().size());

  const aig::Aig design = gen::comparator(8);
  std::printf("design: 8-bit comparator (%zu ANDs)\n\n", design.num_ands());

  auto report = [&](const cell::Library& lib) {
    const auto netlist = map::map_to_cells(design, lib);
    const auto timing = sta::run_sta(netlist, lib, {});
    std::printf("library %-12s: %4zu gates, %8.1f um2, %7.1f ps\n", lib.name().c_str(),
                netlist.num_gates(), timing.total_area_um2, timing.max_delay_ps);
    // Mapping must preserve the function regardless of the library.
    const bool ok = aig::equivalent(design, net::to_aig(netlist, lib));
    std::printf("  equivalence: %s;  cell mix:", ok ? "PASS" : "FAIL");
    for (const auto& [cell_name, count] : netlist.cell_histogram(lib)) {
      std::printf(" %s x%d", cell_name.c_str(), count);
    }
    std::printf("\n");
  };

  report(kit);
  report(cell::mini_sky130());

  std::printf(
      "\nthe rich library wins on both axes: XOR/AOI/MUX cells absorb logic that the\n"
      "NAND kit must spell out, and multiple drive strengths tame fanout delay.\n");

  // Round-trip the built-in library through the text format.
  const auto text = cell::mini_sky130().to_text();
  const auto back = cell::Library::from_text(text);
  std::printf("mini_sky130 text round-trip: %zu cells -> %zu cells\n",
              cell::mini_sky130().cells().size(), back.cells().size());
  return 0;
}
